//! Streaming partition strategies.
//!
//! The paper's Play panel offers "a streaming-style partition algorithm [8]
//! that reduces cross edges" — reference [8] is Stanton & Kliot (KDD 2012).
//! The two best-known heuristics from that line of work are implemented
//! here:
//!
//! * **LDG** (Linear Deterministic Greedy): place each arriving vertex on the
//!   fragment holding most of its already-placed neighbours, damped by a
//!   capacity penalty `1 - size/capacity`.
//! * **Fennel**: interpolates between LDG and hash by charging a cost
//!   `α · γ · size^(γ-1)` for fragment size.
//!
//! Both stream vertices in id order and are deterministic.

use crate::assignment::PartitionAssignment;
use crate::strategy::Partitioner;
use grape_graph::{CsrGraph, Direction};

/// Linear Deterministic Greedy streaming partitioner.
#[derive(Debug, Clone, Copy)]
pub struct LdgPartitioner {
    /// Capacity slack factor: each fragment may hold up to
    /// `slack · n / k` vertices.
    pub slack: f64,
}

impl Default for LdgPartitioner {
    fn default() -> Self {
        Self { slack: 1.1 }
    }
}

impl Partitioner for LdgPartitioner {
    fn partition<V: Clone, E: Clone>(
        &self,
        graph: &CsrGraph<V, E>,
        k: usize,
    ) -> PartitionAssignment {
        let k = k.max(1);
        let n = graph.num_vertices();
        let mut assignment = PartitionAssignment::new(k);
        if n == 0 {
            return assignment;
        }
        let capacity = (self.slack * n as f64 / k as f64).ceil().max(1.0);
        let mut sizes = vec![0usize; k];
        for v in graph.vertices() {
            // Count already-placed neighbours per fragment.
            let mut neighbour_count = vec![0usize; k];
            for (u, _) in graph.neighbours(v, Direction::Both) {
                if let Some(f) = assignment.fragment_of(u) {
                    neighbour_count[f] += 1;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for f in 0..k {
                let penalty = 1.0 - sizes[f] as f64 / capacity;
                let score = neighbour_count[f] as f64 * penalty;
                // Tie-break toward the emptiest fragment for balance.
                let score = score - sizes[f] as f64 * 1e-9;
                if score > best_score {
                    best_score = score;
                    best = f;
                }
            }
            assignment.assign(v, best);
            sizes[best] += 1;
        }
        assignment
    }

    fn name(&self) -> &'static str {
        "ldg-streaming"
    }
}

/// Fennel streaming partitioner.
#[derive(Debug, Clone, Copy)]
pub struct FennelPartitioner {
    /// Exponent γ of the size cost (the paper's recommended 1.5).
    pub gamma: f64,
    /// Balance slack: hard cap of `slack · n / k` vertices per fragment.
    pub slack: f64,
}

impl Default for FennelPartitioner {
    fn default() -> Self {
        Self {
            gamma: 1.5,
            slack: 1.1,
        }
    }
}

impl Partitioner for FennelPartitioner {
    fn partition<V: Clone, E: Clone>(
        &self,
        graph: &CsrGraph<V, E>,
        k: usize,
    ) -> PartitionAssignment {
        let k = k.max(1);
        let n = graph.num_vertices();
        let m = graph.num_edges().max(1);
        let mut assignment = PartitionAssignment::new(k);
        if n == 0 {
            return assignment;
        }
        // α chosen as in the Fennel paper: m · k^(γ-1) / n^γ.
        let alpha = m as f64 * (k as f64).powf(self.gamma - 1.0) / (n as f64).powf(self.gamma);
        let capacity = (self.slack * n as f64 / k as f64).ceil().max(1.0) as usize;
        let mut sizes = vec![0usize; k];
        for v in graph.vertices() {
            let mut neighbour_count = vec![0usize; k];
            for (u, _) in graph.neighbours(v, Direction::Both) {
                if let Some(f) = assignment.fragment_of(u) {
                    neighbour_count[f] += 1;
                }
            }
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for f in 0..k {
                if sizes[f] >= capacity {
                    continue;
                }
                let size_cost =
                    alpha * self.gamma * (sizes[f] as f64).max(0.0).powf(self.gamma - 1.0);
                let score = neighbour_count[f] as f64 - size_cost;
                if score > best_score {
                    best_score = score;
                    best = f;
                }
            }
            if best_score == f64::NEG_INFINITY {
                // Every fragment is at capacity (can happen with tiny slack);
                // fall back to the smallest fragment.
                best = (0..k).min_by_key(|f| sizes[*f]).unwrap_or(0);
            }
            assignment.assign(v, best);
            sizes[best] += 1;
        }
        assignment
    }

    fn name(&self) -> &'static str {
        "fennel-streaming"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::evaluate_partition;
    use crate::strategy::HashPartitioner;
    use grape_graph::generators::{barabasi_albert, road_network, RoadNetworkConfig};

    fn road() -> grape_graph::CsrGraph<(), f64> {
        road_network(
            RoadNetworkConfig {
                width: 24,
                height: 24,
                removal_prob: 0.0,
                shortcut_prob: 0.0,
                ..Default::default()
            },
            9,
        )
        .unwrap()
    }

    #[test]
    fn ldg_covers_all_vertices_and_respects_k() {
        let g = barabasi_albert(400, 3, 2).unwrap();
        let a = LdgPartitioner::default().partition(&g, 5);
        assert_eq!(a.num_assigned(), 400);
        assert!(a.iter().all(|(_, f)| f < 5));
    }

    #[test]
    fn streaming_partitioners_cut_fewer_edges_than_hash() {
        let g = road();
        let hash = evaluate_partition(&g, &HashPartitioner.partition(&g, 8));
        let ldg = evaluate_partition(&g, &LdgPartitioner::default().partition(&g, 8));
        let fennel = evaluate_partition(&g, &FennelPartitioner::default().partition(&g, 8));
        assert!(
            ldg.cut_edges < hash.cut_edges,
            "ldg {} < hash {}",
            ldg.cut_edges,
            hash.cut_edges
        );
        assert!(
            fennel.cut_edges < hash.cut_edges,
            "fennel {} < hash {}",
            fennel.cut_edges,
            hash.cut_edges
        );
    }

    #[test]
    fn fennel_respects_capacity_slack() {
        let g = barabasi_albert(500, 3, 7).unwrap();
        let p = FennelPartitioner {
            gamma: 1.5,
            slack: 1.05,
        };
        let a = p.partition(&g, 4);
        let cap = (1.05_f64 * 500.0 / 4.0).ceil() as usize;
        for s in a.sizes() {
            assert!(s <= cap + 1, "size {s} exceeds capacity {cap}");
        }
    }

    #[test]
    fn ldg_balance_is_reasonable() {
        let g = barabasi_albert(600, 4, 11).unwrap();
        let a = LdgPartitioner::default().partition(&g, 6);
        let sizes = a.sizes();
        let max = *sizes.iter().max().unwrap();
        assert!(max as f64 <= 1.25 * 600.0 / 6.0, "sizes {sizes:?}");
    }

    #[test]
    fn empty_graph_is_fine() {
        let empty = grape_graph::CsrGraph::<(), ()>::from_records(vec![], vec![], false).unwrap();
        assert_eq!(
            LdgPartitioner::default()
                .partition(&empty, 3)
                .num_assigned(),
            0
        );
        assert_eq!(
            FennelPartitioner::default()
                .partition(&empty, 3)
                .num_assigned(),
            0
        );
    }
}
