//! Fragment construction.
//!
//! A [`Fragment`] is the unit of work a GRAPE worker owns: the subgraph
//! induced by the vertices assigned to it, extended with *mirror* copies of
//! the remote endpoints of cross edges. The paper's *border nodes* — the
//! vertices that carry update parameters — are exactly:
//!
//! * the **outer** vertices: mirrors of vertices owned by another fragment
//!   that appear as endpoints of this fragment's edges, and
//! * the **inner-border** vertices: this fragment's own vertices that appear
//!   as mirrors in some other fragment (so other workers may send updated
//!   values for them).
//!
//! [`build_fragments`] cuts a global [`CsrGraph`] according to a
//! [`PartitionAssignment`] and computes all of this routing information once,
//! so the engine never has to consult the global graph again.

use crate::assignment::{FragmentId, PartitionAssignment};
use grape_graph::types::EdgeRecord;
use grape_graph::{CsrGraph, DenseBitset, VertexId};
use std::collections::{HashMap, HashSet};

/// A graph fragment owned by one worker.
#[derive(Debug, Clone)]
pub struct Fragment<V, E> {
    /// This fragment's id (`P_i` in the paper).
    pub id: FragmentId,
    /// Total number of fragments in the job.
    pub num_fragments: usize,
    /// Local subgraph: inner vertices plus mirrored outer vertices, with all
    /// edges incident to at least one inner vertex.
    pub graph: CsrGraph<V, E>,
    /// Vertices owned by this fragment (sorted).
    inner: Vec<VertexId>,
    /// Mirrors of remote vertices that appear in local edges (sorted).
    outer: Vec<VertexId>,
    /// Owner fragment of each outer vertex.
    outer_owner: HashMap<VertexId, FragmentId>,
    /// For each inner vertex that is mirrored elsewhere, the fragments that
    /// hold a mirror of it.
    mirrored_at: HashMap<VertexId, Vec<FragmentId>>,
    /// Membership bitset over the local graph's dense indices: bit set =
    /// inner vertex, bit clear = outer (mirror). Replaces per-call
    /// `HashSet<VertexId>` probes on the hot paths.
    inner_mask: DenseBitset,
    /// Dense indices of the inner vertices, aligned with `inner`.
    inner_dense: Vec<u32>,
    /// Dense indices of the outer vertices, aligned with `outer`.
    outer_dense: Vec<u32>,
    /// Border vertices (outer ∪ mirrored inner), sorted; precomputed once at
    /// construction instead of re-sorted on every `border_vertices()` call.
    border: Vec<VertexId>,
    /// Dense index of each border vertex, aligned with `border`.
    border_dense: Vec<u32>,
    /// Inner vertices that are mirrored at other fragments, sorted.
    mirrored_inner: Vec<VertexId>,
    /// Dense indices aligned with `mirrored_inner`.
    mirrored_inner_dense: Vec<u32>,
    /// Position of each mirrored-inner vertex in `border`, aligned with
    /// `mirrored_inner`.
    mirrored_inner_border_pos: Vec<u32>,
}

impl<V: Clone, E: Clone> Fragment<V, E> {
    /// The vertices owned by this fragment, in ascending order.
    pub fn inner_vertices(&self) -> &[VertexId] {
        &self.inner
    }

    /// The mirror (outer) vertices, in ascending order.
    pub fn outer_vertices(&self) -> &[VertexId] {
        &self.outer
    }

    /// Dense indices (into [`Fragment::graph`]) of the inner vertices,
    /// aligned with [`Fragment::inner_vertices`].
    pub fn inner_dense_indices(&self) -> &[u32] {
        &self.inner_dense
    }

    /// Dense indices (into [`Fragment::graph`]) of the outer vertices,
    /// aligned with [`Fragment::outer_vertices`].
    pub fn outer_dense_indices(&self) -> &[u32] {
        &self.outer_dense
    }

    /// Whether `v` is owned by this fragment.
    pub fn is_inner(&self, v: VertexId) -> bool {
        self.graph
            .dense_index(v)
            .is_some_and(|i| self.inner_mask.contains(i))
    }

    /// Whether `v` is a mirror of a remote vertex.
    pub fn is_outer(&self, v: VertexId) -> bool {
        self.graph
            .dense_index(v)
            .is_some_and(|i| !self.inner_mask.contains(i))
    }

    /// Whether the local vertex at dense index `i` is inner (owned here).
    #[inline]
    pub fn is_inner_dense(&self, i: u32) -> bool {
        self.inner_mask.contains(i)
    }

    /// The inner-membership bitset over the local graph's dense indices
    /// (bit set = inner vertex). Lets per-superstep loops that need the whole
    /// membership view borrow the precomputed bitset instead of rebuilding
    /// one from [`Fragment::inner_dense_indices`].
    pub fn inner_bitset(&self) -> &DenseBitset {
        &self.inner_mask
    }

    /// Whether the local vertex at dense index `i` is an outer mirror.
    #[inline]
    pub fn is_outer_dense(&self, i: u32) -> bool {
        (i as usize) < self.graph.num_vertices() && !self.inner_mask.contains(i)
    }

    /// The fragment that owns an outer vertex.
    pub fn owner_of(&self, v: VertexId) -> Option<FragmentId> {
        if self.is_inner(v) {
            Some(self.id)
        } else {
            self.outer_owner.get(&v).copied()
        }
    }

    /// Fragments that hold a mirror of the inner vertex `v` (empty slice if
    /// none or if `v` is not inner).
    pub fn mirrors_of(&self, v: VertexId) -> &[FragmentId] {
        self.mirrored_at
            .get(&v)
            .map(|f| f.as_slice())
            .unwrap_or(&[])
    }

    /// Border nodes in the paper's sense: vertices of this fragment that
    /// carry update parameters. These are the outer vertices plus the inner
    /// vertices mirrored at other fragments, in ascending order. The list is
    /// precomputed at construction — algorithms call this in PEval and every
    /// IncEval round, so it must be allocation-free.
    pub fn border_vertices(&self) -> &[VertexId] {
        &self.border
    }

    /// Dense indices (into [`Fragment::graph`]) of the border vertices,
    /// aligned with [`Fragment::border_vertices`].
    pub fn border_dense_indices(&self) -> &[u32] {
        &self.border_dense
    }

    /// Position of `v` in [`Fragment::border_vertices`], if it is a border
    /// vertex. A binary search over the sorted border list — no hashing —
    /// so per-run side tables aligned with the border (such as the engine's
    /// border→slot mapping) can be addressed without a `HashMap`.
    #[inline]
    pub fn border_position(&self, v: VertexId) -> Option<u32> {
        self.border.binary_search(&v).ok().map(|i| i as u32)
    }

    /// Inner vertices mirrored at other fragments (the inner half of the
    /// border), in ascending order.
    pub fn mirrored_inner_vertices(&self) -> &[VertexId] {
        &self.mirrored_inner
    }

    /// Dense indices aligned with [`Fragment::mirrored_inner_vertices`].
    pub fn mirrored_inner_dense_indices(&self) -> &[u32] {
        &self.mirrored_inner_dense
    }

    /// Positions of the mirrored-inner vertices in
    /// [`Fragment::border_vertices`], aligned with
    /// [`Fragment::mirrored_inner_vertices`]. Precomputed so publication
    /// loops over the inner half of the border can address per-border side
    /// tables (e.g. `PieContext::update_at`) without any search.
    pub fn mirrored_inner_border_positions(&self) -> &[u32] {
        &self.mirrored_inner_border_pos
    }

    /// All fragments that must be informed when the value of `v` changes at
    /// this fragment: the owner of `v` (if remote) plus every fragment that
    /// mirrors `v`.
    pub fn recipients_of(&self, v: VertexId) -> Vec<FragmentId> {
        let mut out = Vec::new();
        if let Some(owner) = self.outer_owner.get(&v) {
            out.push(*owner);
        }
        for f in self.mirrors_of(v) {
            if *f != self.id {
                out.push(*f);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of inner vertices.
    pub fn num_inner(&self) -> usize {
        self.inner.len()
    }

    /// Number of outer (mirror) vertices.
    pub fn num_outer(&self) -> usize {
        self.outer.len()
    }

    /// Number of local edges (edges with at least one inner endpoint,
    /// counted once per direction present in the global graph).
    pub fn num_local_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Flattens this fragment into its transport-friendly parts: everything
    /// a remote worker needs to rebuild it with [`Fragment::from_parts`],
    /// with no `HashMap`s and a canonical (sorted) order throughout, so the
    /// round trip is deterministic.
    pub fn to_parts(&self) -> FragmentParts<V, E> {
        let vertices: Vec<(VertexId, V)> = self
            .graph
            .vertex_ids()
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, self.graph.vertex_data_at(i as u32).clone()))
            .collect();
        let edges: Vec<(VertexId, VertexId, E)> = self
            .graph
            .edge_records()
            .into_iter()
            .map(|r| (r.src, r.dst, r.data))
            .collect();
        let mut outer_owner: Vec<(VertexId, u32)> = self
            .outer_owner
            .iter()
            .map(|(&v, &f)| (v, f as u32))
            .collect();
        outer_owner.sort_unstable_by_key(|&(v, _)| v);
        let mut mirrored_at: Vec<(VertexId, Vec<u32>)> = self
            .mirrored_at
            .iter()
            .map(|(&v, fs)| (v, fs.iter().map(|&f| f as u32).collect()))
            .collect();
        mirrored_at.sort_unstable_by_key(|&(v, _)| v);
        FragmentParts {
            id: self.id,
            num_fragments: self.num_fragments,
            vertices,
            edges,
            inner: self.inner.clone(),
            outer: self.outer.clone(),
            outer_owner,
            mirrored_at,
        }
    }
}

impl<V: Clone + Default, E: Clone> Fragment<V, E> {
    /// Rebuilds a fragment from its shipped parts. The local graph and every
    /// derived table are reconstructed through the exact same code path as
    /// [`build_fragments`], so a round trip through
    /// [`Fragment::to_parts`] yields a bit-identical fragment.
    pub fn from_parts(parts: FragmentParts<V, E>) -> Result<Self, grape_graph::GraphError> {
        let FragmentParts {
            id,
            num_fragments,
            vertices,
            edges,
            inner,
            outer,
            outer_owner,
            mirrored_at,
        } = parts;
        let edge_records: Vec<EdgeRecord<E>> = edges
            .into_iter()
            .map(|(s, d, w)| EdgeRecord::new(s, d, w))
            .collect();
        let local_graph = CsrGraph::from_records(vertices, edge_records, true)?;
        let outer_owner: HashMap<VertexId, FragmentId> = outer_owner
            .into_iter()
            .map(|(v, f)| (v, f as FragmentId))
            .collect();
        let mirrored: HashMap<VertexId, Vec<FragmentId>> = mirrored_at
            .into_iter()
            .map(|(v, fs)| (v, fs.into_iter().map(|f| f as FragmentId).collect()))
            .collect();
        Ok(assemble_fragment(
            id,
            num_fragments,
            local_graph,
            inner,
            outer,
            outer_owner,
            mirrored,
        ))
    }
}

/// The flat, transport-friendly view of a [`Fragment`]: plain sorted vectors
/// only (no `HashMap`s), so it has a canonical byte encoding. Produced by
/// [`Fragment::to_parts`], consumed by [`Fragment::from_parts`]; the wire
/// codec lives in `grape-core` (`ship` module) next to the other frame
/// codecs.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentParts<V, E> {
    /// The fragment's id.
    pub id: FragmentId,
    /// Total number of fragments in the job.
    pub num_fragments: usize,
    /// `(vertex, payload)` pairs of the local graph, in ascending vertex-id
    /// order (the local graph's canonical dense order).
    pub vertices: Vec<(VertexId, V)>,
    /// Local edges in the local graph's CSR order.
    pub edges: Vec<(VertexId, VertexId, E)>,
    /// Inner (owned) vertices, sorted.
    pub inner: Vec<VertexId>,
    /// Outer (mirror) vertices, sorted.
    pub outer: Vec<VertexId>,
    /// `(outer vertex, owner fragment)`, sorted by vertex.
    pub outer_owner: Vec<(VertexId, u32)>,
    /// `(inner vertex, fragments mirroring it)`, sorted by vertex; the
    /// per-vertex fragment lists are sorted too.
    pub mirrored_at: Vec<(VertexId, Vec<u32>)>,
}

/// Cuts `graph` into fragments according to `assignment`.
///
/// Every vertex must be assigned; vertices missing from the assignment are
/// placed on fragment 0 so the engine never loses data.
///
/// Each fragment receives every edge whose source *or* destination it owns,
/// so both out-edges of inner vertices and in-edges from remote vertices are
/// locally visible (the latter are what IncEval needs to relax when a border
/// value arrives).
pub fn build_fragments<V: Clone + Default, E: Clone>(
    graph: &CsrGraph<V, E>,
    assignment: &PartitionAssignment,
) -> Vec<Fragment<V, E>> {
    let k = assignment.num_fragments().max(1);
    let owner = |v: VertexId| assignment.fragment_of(v).unwrap_or(0);

    // Vertex memberships.
    let mut inner: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for v in graph.vertices() {
        inner[owner(v)].push(v);
    }

    // Edge memberships and mirror discovery.
    let mut edges: Vec<Vec<EdgeRecord<E>>> = vec![Vec::new(); k];
    let mut outer: Vec<HashSet<VertexId>> = vec![HashSet::new(); k];
    // mirrored_at[owner fragment] : vertex -> set of fragments mirroring it
    let mut mirrored_at: Vec<HashMap<VertexId, HashSet<FragmentId>>> = vec![HashMap::new(); k];
    for (s, d, w) in graph.edges() {
        let fs = owner(s);
        let fd = owner(d);
        edges[fs].push(EdgeRecord::new(s, d, w.clone()));
        if fd != fs {
            // The destination fragment also sees this edge (as an in-edge of
            // its inner vertex d from the mirror of s).
            edges[fd].push(EdgeRecord::new(s, d, w.clone()));
            // s is mirrored at fd; d is mirrored at fs.
            outer[fd].insert(s);
            outer[fs].insert(d);
            mirrored_at[fs].entry(s).or_default().insert(fd);
            mirrored_at[fd].entry(d).or_default().insert(fs);
        }
    }

    let mut fragments = Vec::with_capacity(k);
    for f in 0..k {
        let mut inner_list = std::mem::take(&mut inner[f]);
        inner_list.sort_unstable();
        let mut outer_list: Vec<VertexId> = outer[f].iter().copied().collect();
        outer_list.sort_unstable();
        let outer_owner: HashMap<VertexId, FragmentId> =
            outer_list.iter().map(|&v| (v, owner(v))).collect();
        let mirrored: HashMap<VertexId, Vec<FragmentId>> = mirrored_at[f]
            .iter()
            .map(|(v, set)| {
                let mut list: Vec<FragmentId> = set.iter().copied().collect();
                list.sort_unstable();
                (*v, list)
            })
            .collect();

        // Local vertex set: inner + outer, each with its payload from the
        // global graph (mirrors keep the payload so label/keyword predicates
        // still work on them).
        let mut vertices: Vec<(VertexId, V)> =
            Vec::with_capacity(inner_list.len() + outer_list.len());
        for &v in inner_list.iter().chain(outer_list.iter()) {
            let data = graph.vertex_data(v).cloned().unwrap_or_default();
            vertices.push((v, data));
        }
        let local_graph = CsrGraph::from_records(vertices, std::mem::take(&mut edges[f]), true)
            .expect("fragment edges reference only local vertices");

        fragments.push(assemble_fragment(
            f,
            k,
            local_graph,
            inner_list,
            outer_list,
            outer_owner,
            mirrored,
        ));
    }
    fragments
}

/// Derives every precomputed lookup table from a fragment's primary data and
/// assembles the [`Fragment`]. Shared by [`build_fragments`] (the
/// coordinator-side cut) and [`Fragment::from_parts`] (a shipped fragment
/// rebuilt on a remote worker), so both construction paths are one code path
/// and the results are bit-identical.
pub(crate) fn assemble_fragment<V: Clone, E: Clone>(
    id: FragmentId,
    num_fragments: usize,
    local_graph: CsrGraph<V, E>,
    inner_list: Vec<VertexId>,
    outer_list: Vec<VertexId>,
    outer_owner: HashMap<VertexId, FragmentId>,
    mirrored: HashMap<VertexId, Vec<FragmentId>>,
) -> Fragment<V, E> {
    // Precompute the dense lookup structures once, so the per-superstep
    // hot paths never rebuild or hash anything.
    let dense_of = |v: VertexId| {
        local_graph
            .dense_index(v)
            .expect("inner and outer vertices are in the local graph")
    };
    let mut inner_mask = DenseBitset::new(local_graph.num_vertices());
    let inner_dense: Vec<u32> = inner_list.iter().map(|&v| dense_of(v)).collect();
    for &i in &inner_dense {
        inner_mask.set(i);
    }
    let outer_dense: Vec<u32> = outer_list.iter().map(|&v| dense_of(v)).collect();
    let mut mirrored_inner: Vec<VertexId> = mirrored.keys().copied().collect();
    mirrored_inner.sort_unstable();
    let mirrored_inner_dense: Vec<u32> = mirrored_inner.iter().map(|&v| dense_of(v)).collect();
    let mut border: Vec<VertexId> = outer_list
        .iter()
        .chain(mirrored_inner.iter())
        .copied()
        .collect();
    border.sort_unstable();
    border.dedup();
    let border_dense: Vec<u32> = border.iter().map(|&v| dense_of(v)).collect();
    // `mirrored_inner` is a sorted subset of the sorted `border`, so its
    // border positions fall out of one linear merge scan.
    let mut mirrored_inner_border_pos = Vec::with_capacity(mirrored_inner.len());
    let mut cursor = 0usize;
    for &v in &mirrored_inner {
        while border[cursor] != v {
            cursor += 1;
        }
        mirrored_inner_border_pos.push(cursor as u32);
    }

    Fragment {
        id,
        num_fragments,
        graph: local_graph,
        inner: inner_list,
        outer: outer_list,
        outer_owner,
        mirrored_at: mirrored,
        inner_mask,
        inner_dense,
        outer_dense,
        border,
        border_dense,
        mirrored_inner,
        mirrored_inner_dense,
        mirrored_inner_border_pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{HashPartitioner, Partitioner, RangePartitioner};
    use grape_graph::generators::{barabasi_albert, erdos_renyi};
    use grape_graph::GraphBuilder;

    fn chain(n: u64) -> CsrGraph<(), f64> {
        let mut b = GraphBuilder::<(), f64>::new();
        for v in 0..n - 1 {
            b.add_edge(v, v + 1, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn inner_vertices_partition_the_graph() {
        let g = barabasi_albert(200, 3, 1).unwrap();
        let a = HashPartitioner.partition(&g, 4);
        let frags = build_fragments(&g, &a);
        assert_eq!(frags.len(), 4);
        let total_inner: usize = frags.iter().map(|f| f.num_inner()).sum();
        assert_eq!(total_inner, g.num_vertices());
        // No vertex is inner in two fragments.
        let mut seen = HashSet::new();
        for f in &frags {
            for &v in f.inner_vertices() {
                assert!(seen.insert(v), "vertex {v} owned twice");
            }
        }
    }

    #[test]
    fn chain_split_in_two_has_one_cross_edge_and_correct_borders() {
        let g = chain(10);
        let a = RangePartitioner.partition(&g, 2);
        let frags = build_fragments(&g, &a);
        let f0 = &frags[0];
        let f1 = &frags[1];
        // Vertices 0..4 on fragment 0, 5..9 on fragment 1; cross edge 4 -> 5.
        assert!(f0.is_inner(4));
        assert!(f1.is_inner(5));
        assert!(f0.is_outer(5), "5 is mirrored on fragment 0");
        assert!(f1.is_outer(4), "4 is mirrored on fragment 1");
        assert_eq!(f0.owner_of(5), Some(1));
        assert_eq!(f1.owner_of(4), Some(0));
        assert_eq!(f0.mirrors_of(4), &[1]);
        assert_eq!(f1.mirrors_of(5), &[0]);
        assert_eq!(f0.border_vertices(), vec![4, 5]);
        assert_eq!(f1.border_vertices(), vec![4, 5]);
        // Message routing: if fragment 0 updates mirror 5, it informs owner 1.
        assert_eq!(f0.recipients_of(5), vec![1]);
        // If fragment 0 updates its own border vertex 4, it informs mirror 1.
        assert_eq!(f0.recipients_of(4), vec![1]);
    }

    #[test]
    fn cross_edges_visible_from_both_sides() {
        let g = chain(10);
        let a = RangePartitioner.partition(&g, 2);
        let frags = build_fragments(&g, &a);
        // Edge 4 -> 5 must exist in both local graphs.
        assert!(frags[0].graph.out_edges(4).any(|(d, _)| d == 5));
        assert!(frags[1].graph.out_edges(4).any(|(d, _)| d == 5));
    }

    #[test]
    fn local_edge_counts_cover_global_edges() {
        let g = erdos_renyi(150, 0.03, 3).unwrap();
        let a = HashPartitioner.partition(&g, 5);
        let frags = build_fragments(&g, &a);
        let local_total: usize = frags.iter().map(|f| f.num_local_edges()).sum();
        // Cross edges are duplicated in exactly two fragments.
        let q = crate::quality::evaluate_partition(&g, &a);
        assert_eq!(local_total, g.num_edges() + q.cut_edges);
    }

    #[test]
    fn dense_tables_agree_with_global_id_views() {
        let g = erdos_renyi(200, 0.03, 9).unwrap();
        let a = HashPartitioner.partition(&g, 4);
        for f in build_fragments(&g, &a) {
            // Aligned id/dense pairs round-trip through the local graph.
            assert_eq!(f.inner_vertices().len(), f.inner_dense_indices().len());
            for (&v, &i) in f.inner_vertices().iter().zip(f.inner_dense_indices()) {
                assert_eq!(f.graph.vertex_of(i), v);
                assert!(f.is_inner(v) && f.is_inner_dense(i));
                assert!(!f.is_outer(v) && !f.is_outer_dense(i));
            }
            for (&v, &i) in f.outer_vertices().iter().zip(f.outer_dense_indices()) {
                assert_eq!(f.graph.vertex_of(i), v);
                assert!(f.is_outer(v) && f.is_outer_dense(i));
                assert!(!f.is_inner(v) && !f.is_inner_dense(i));
            }
            for (pos, (&v, &i)) in f
                .border_vertices()
                .iter()
                .zip(f.border_dense_indices())
                .enumerate()
            {
                assert_eq!(f.graph.vertex_of(i), v);
                assert_eq!(f.border_position(v), Some(pos as u32));
            }
            // Non-border vertices have no border position.
            for &v in f.inner_vertices() {
                if f.mirrors_of(v).is_empty() {
                    assert_eq!(f.border_position(v), None);
                }
            }
            assert_eq!(f.border_position(999_999), None);
            // The cached border equals the on-the-fly definition.
            let mut expected: Vec<VertexId> = f
                .outer_vertices()
                .iter()
                .chain(f.mirrored_inner_vertices().iter())
                .copied()
                .collect();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(f.border_vertices(), expected);
            // Mirrored-inner vertices are exactly the inner ones with mirrors.
            for (&v, &i) in f
                .mirrored_inner_vertices()
                .iter()
                .zip(f.mirrored_inner_dense_indices())
            {
                assert_eq!(f.graph.vertex_of(i), v);
                assert!(f.is_inner(v));
                assert!(!f.mirrors_of(v).is_empty());
            }
            // Their precomputed border positions point back at themselves.
            assert_eq!(
                f.mirrored_inner_border_positions().len(),
                f.mirrored_inner_vertices().len()
            );
            for (&v, &pos) in f
                .mirrored_inner_vertices()
                .iter()
                .zip(f.mirrored_inner_border_positions())
            {
                assert_eq!(f.border_vertices()[pos as usize], v);
                assert_eq!(f.border_position(v), Some(pos));
            }
            // Vertices absent from the local graph are neither inner nor outer.
            assert!(!f.is_inner(999_999));
            assert!(!f.is_outer(999_999));
        }
    }

    #[test]
    fn single_fragment_has_no_borders() {
        let g = barabasi_albert(100, 2, 2).unwrap();
        let a = HashPartitioner.partition(&g, 1);
        let frags = build_fragments(&g, &a);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].num_outer(), 0);
        assert!(frags[0].border_vertices().is_empty());
        assert_eq!(frags[0].num_inner(), 100);
    }

    #[test]
    fn mirror_payloads_are_preserved() {
        let mut b = GraphBuilder::<u8, ()>::new();
        b.add_vertex(0, 10);
        b.add_vertex(1, 20);
        b.add_edge(0, 1, ());
        let g = b.build().unwrap();
        let mut a = PartitionAssignment::new(2);
        a.assign(0, 0);
        a.assign(1, 1);
        let frags = build_fragments(&g, &a);
        // Fragment 0 sees vertex 1 as a mirror but keeps its payload.
        assert_eq!(*frags[0].graph.vertex_data(1).unwrap(), 20);
    }

    #[test]
    fn parts_roundtrip_rebuilds_fragments_bit_identically() {
        let g = erdos_renyi(180, 0.04, 5).unwrap();
        let a = HashPartitioner.partition(&g, 4);
        for f in build_fragments(&g, &a) {
            let parts = f.to_parts();
            let back = Fragment::from_parts(parts.clone()).expect("rebuild");
            // Every table — primary and derived — must match exactly.
            assert_eq!(back.id, f.id);
            assert_eq!(back.num_fragments, f.num_fragments);
            assert_eq!(back.graph.vertex_ids(), f.graph.vertex_ids());
            assert_eq!(back.graph.num_edges(), f.graph.num_edges());
            assert_eq!(
                back.graph.edges().collect::<Vec<_>>(),
                f.graph.edges().collect::<Vec<_>>(),
                "CSR edge order must survive the round trip"
            );
            assert_eq!(back.inner_vertices(), f.inner_vertices());
            assert_eq!(back.outer_vertices(), f.outer_vertices());
            assert_eq!(back.inner_dense_indices(), f.inner_dense_indices());
            assert_eq!(back.outer_dense_indices(), f.outer_dense_indices());
            assert_eq!(back.border_vertices(), f.border_vertices());
            assert_eq!(back.border_dense_indices(), f.border_dense_indices());
            assert_eq!(back.mirrored_inner_vertices(), f.mirrored_inner_vertices());
            assert_eq!(
                back.mirrored_inner_border_positions(),
                f.mirrored_inner_border_positions()
            );
            for &v in f.outer_vertices() {
                assert_eq!(back.owner_of(v), f.owner_of(v));
            }
            for &v in f.mirrored_inner_vertices() {
                assert_eq!(back.mirrors_of(v), f.mirrors_of(v));
            }
            // And re-flattening yields the same canonical parts.
            assert_eq!(back.to_parts(), f.to_parts());
        }
    }

    #[test]
    fn unassigned_vertices_default_to_fragment_zero() {
        let g = chain(4);
        let mut a = PartitionAssignment::new(2);
        a.assign(0, 1); // only vertex 0 assigned explicitly
        let frags = build_fragments(&g, &a);
        let total: usize = frags.iter().map(|f| f.num_inner()).sum();
        assert_eq!(total, 4);
        assert!(frags[1].is_inner(0));
        assert!(frags[0].is_inner(1));
    }
}
