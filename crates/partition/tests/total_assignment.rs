//! Every builtin partition strategy must produce a *total* assignment: all
//! vertices of the input graph placed, every fragment id in `0..k`, and the
//! per-fragment sizes summing back to the vertex count. This is the contract
//! `build_fragments` and the PIE engine rely on; a partitioner that drops or
//! misplaces a vertex would silently corrupt query answers.

use grape_graph::generators::{
    barabasi_albert, erdos_renyi, rmat, road_network, RmatConfig, RoadNetworkConfig,
};
use grape_graph::CsrGraph;
use grape_partition::BuiltinStrategy;

fn workloads() -> Vec<(&'static str, CsrGraph<(), f64>)> {
    vec![
        (
            "road_grid_10x14",
            road_network(
                RoadNetworkConfig {
                    width: 10,
                    height: 14,
                    ..Default::default()
                },
                3,
            )
            .unwrap(),
        ),
        ("barabasi_albert_180", barabasi_albert(180, 3, 7).unwrap()),
        ("erdos_renyi_90", erdos_renyi(90, 0.06, 11).unwrap()),
        (
            "rmat_128",
            rmat(
                RmatConfig {
                    scale: 7,
                    ..Default::default()
                },
                5,
            )
            .unwrap(),
        ),
    ]
}

#[test]
fn every_builtin_strategy_places_every_vertex_in_range() {
    for (name, graph) in workloads() {
        for &strategy in BuiltinStrategy::all() {
            for k in 1..=8usize {
                let assignment = strategy.partition(&graph, k);
                assert_eq!(
                    assignment.num_fragments(),
                    k,
                    "{strategy:?} on {name} with k={k}: wrong fragment count"
                );
                assert_eq!(
                    assignment.num_assigned(),
                    graph.num_vertices(),
                    "{strategy:?} on {name} with k={k}: not a total assignment"
                );
                for v in graph.vertices() {
                    let f = assignment.fragment_of(v).unwrap_or_else(|| {
                        panic!("{strategy:?} on {name} with k={k}: vertex {v} unplaced")
                    });
                    assert!(
                        f < k,
                        "{strategy:?} on {name} with k={k}: vertex {v} in fragment {f}"
                    );
                }
                let sizes = assignment.sizes();
                assert_eq!(sizes.len(), k);
                assert_eq!(
                    sizes.iter().sum::<usize>(),
                    graph.num_vertices(),
                    "{strategy:?} on {name} with k={k}: sizes do not sum to |V|"
                );
            }
        }
    }
}

#[test]
fn strategies_are_deterministic() {
    // Same graph, same k → identical assignment: required for reproducible
    // experiments and for the fragment store round trip.
    let graph = barabasi_albert(150, 2, 9).unwrap();
    for &strategy in BuiltinStrategy::all() {
        let a = strategy.partition(&graph, 5);
        let b = strategy.partition(&graph, 5);
        for v in graph.vertices() {
            assert_eq!(
                a.fragment_of(v),
                b.fragment_of(v),
                "{strategy:?} is nondeterministic at vertex {v}"
            );
        }
    }
}

#[test]
fn single_fragment_owns_everything() {
    let graph = erdos_renyi(60, 0.1, 2).unwrap();
    for &strategy in BuiltinStrategy::all() {
        let assignment = strategy.partition(&graph, 1);
        assert!(
            graph
                .vertices()
                .all(|v| assignment.fragment_of(v) == Some(0)),
            "{strategy:?} with k=1 must place everything in fragment 0"
        );
    }
}
