//! End-to-end multi-process tests: real `grape-worker` OS processes speaking
//! the framed wire protocol over TCP and Unix-domain sockets, pinned
//! bit-identical to the in-process framed reference.

use grape_core::EngineConfig;
use grape_worker::{run_coordinator_connections_with, run_local_framed, GraphSpec, JobSpec};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_grape-worker")
}

fn job(algo: &str, workers: u32) -> JobSpec {
    let labeled = matches!(algo, "sim" | "subiso" | "keyword" | "marketing");
    JobSpec {
        algo: algo.into(),
        graph: if labeled {
            GraphSpec::Social {
                persons: 40,
                products: 5,
                seed: 7,
            }
        } else {
            GraphSpec::Road {
                width: 14,
                height: 14,
                seed: 7,
            }
        },
        strategy: "hash".into(),
        workers,
        index: 0,
        source: 0,
        threads: 1,
        vertices: 0,
        checkpoint_every: 0,
        token: None,
    }
}

fn config_with_timeout(timeout: Duration) -> EngineConfig {
    EngineConfig {
        read_timeout: Some(timeout),
        ..Default::default()
    }
}

fn spawn_workers(connect_args: &[&str], n: u32) -> Vec<Child> {
    (0..n)
        .map(|_| {
            Command::new(worker_bin())
                .args(connect_args)
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn grape-worker")
        })
        .collect()
}

fn reap(children: Vec<Child>) {
    for mut child in children {
        let status = child.wait().expect("wait for worker");
        assert!(status.success(), "worker exited with {status}");
    }
}

#[test]
fn tcp_workers_match_the_in_process_reference() {
    for algo in [
        "sssp",
        "cc",
        "pagerank",
        "cf",
        "sim",
        "subiso",
        "keyword",
        "marketing",
    ] {
        let job = job(algo, 3);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let children = spawn_workers(&["connect", &addr], job.workers);
        let streams = (0..job.workers)
            .map(|_| listener.accept().expect("accept").0)
            .collect();
        let remote = run_coordinator_connections_with(&job, streams, &EngineConfig::default())
            .expect("remote run");
        reap(children);

        let reference = run_local_framed(&job).expect("local run");
        assert_eq!(remote.digests, reference.digests, "{algo}: results differ");
        assert_eq!(
            remote.stats.supersteps, reference.stats.supersteps,
            "{algo}: superstep counts differ"
        );
        assert_eq!(
            remote.stats.messages, reference.stats.messages,
            "{algo}: message counts differ"
        );
        // Same frames either way: the socket path and the framed channel
        // path must account the identical number of wire bytes.
        assert_eq!(
            remote.stats.bytes, reference.stats.bytes,
            "{algo}: wire bytes differ"
        );
    }
}

#[cfg(unix)]
#[test]
fn unix_domain_workers_match_the_in_process_reference() {
    let job = job("sssp", 2);
    let dir = std::env::temp_dir();
    let path = dir.join(format!("grape-worker-test-{}.sock", std::process::id()));
    let path_str = path.to_str().expect("utf-8 socket path");
    let _ = std::fs::remove_file(&path);
    let listener = std::os::unix::net::UnixListener::bind(&path).expect("bind uds");
    let children = spawn_workers(&["connect-uds", path_str], job.workers);
    let streams = (0..job.workers)
        .map(|_| listener.accept().expect("accept").0)
        .collect();
    let remote = run_coordinator_connections_with(&job, streams, &EngineConfig::default())
        .expect("remote run");
    reap(children);
    let _ = std::fs::remove_file(&path);

    let reference = run_local_framed(&job).expect("local run");
    assert_eq!(remote.digests, reference.digests);
    assert_eq!(remote.stats.supersteps, reference.stats.supersteps);
    assert_eq!(remote.stats.messages, reference.stats.messages);
    assert_eq!(remote.stats.bytes, reference.stats.bytes);
}

#[test]
fn silent_workers_fail_the_run_with_a_typed_timeout_error() {
    // Three "workers" connect but never speak the protocol: the coordinator
    // must not hang on the missing PEval reports — it must surface a typed
    // WorkerLost error once the configured read timeout elapses.
    let job = job("sssp", 3);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mut held_clients = Vec::new();
    let mut streams = Vec::new();
    for _ in 0..job.workers {
        held_clients.push(std::net::TcpStream::connect(addr).expect("connect"));
        streams.push(listener.accept().expect("accept").0);
    }
    let timeout = Duration::from_millis(500);
    let start = Instant::now();
    let err = run_coordinator_connections_with(&job, streams, &config_with_timeout(timeout))
        .expect_err("a run with mute workers must fail");
    let elapsed = start.elapsed();
    assert!(
        elapsed >= timeout,
        "failed before the timeout could have elapsed: {elapsed:?}"
    );
    assert!(
        elapsed < timeout + Duration::from_secs(10),
        "took far longer than the deadline: {elapsed:?}"
    );
    let message = err.to_string();
    assert!(
        message.contains("lost") && message.contains("read timeout"),
        "expected a typed worker-lost timeout error, got: {message}"
    );
    drop(held_clients);
}

#[cfg(unix)]
#[test]
fn a_killed_worker_surfaces_a_typed_error_quickly() {
    // SIGKILL one real worker right after it connects: the coordinator's
    // reader sees the closed socket and the run fails with a typed
    // disconnect error immediately — not after the read timeout.
    let job = job("cc", 3);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let mut children = spawn_workers(&["connect", &addr], job.workers);
    let streams = (0..job.workers)
        .map(|_| listener.accept().expect("accept").0)
        .collect();
    children[0].kill().expect("kill worker");
    children[0].wait().expect("reap killed worker");
    let start = Instant::now();
    let err = run_coordinator_connections_with(
        &job,
        streams,
        &config_with_timeout(Duration::from_secs(30)),
    )
    .expect_err("a run missing a worker must fail");
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "disconnect took as long as a timeout: {:?}",
        start.elapsed()
    );
    let message = err.to_string();
    assert!(
        message.contains("lost"),
        "expected a typed worker-lost error, got: {message}"
    );
    for mut child in children.drain(1..) {
        let _ = child.kill();
        let _ = child.wait();
    }
}

#[test]
fn mismatched_or_missing_auth_tokens_are_rejected() {
    // A coordinator with an auth token must refuse workers presenting the
    // wrong token — or none — with a typed PermissionDenied error, before
    // any job state is shipped.
    for wrong_args in [
        vec!["--token", "not-the-secret"], // mismatched
        vec![],                            // missing entirely
    ] {
        let job = job("sssp", 1);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let mut args = vec!["connect", &addr];
        args.extend(wrong_args.iter());
        let children = spawn_workers(&args, 1);
        let streams = vec![listener.accept().expect("accept").0];
        let config = EngineConfig {
            read_timeout: Some(Duration::from_secs(10)),
            auth_token: Some("the-secret".into()),
            ..Default::default()
        };
        let err = run_coordinator_connections_with(&job, streams, &config)
            .expect_err("a wrong token must be rejected");
        assert_eq!(
            err.kind(),
            std::io::ErrorKind::PermissionDenied,
            "want a typed PermissionDenied, got: {err}"
        );
        assert!(
            err.to_string().contains("auth token"),
            "unhelpful auth error: {err}"
        );
        // The rejected worker never gets a job and exits with an error of
        // its own; just make sure it is gone.
        for mut child in children {
            let _ = child.wait();
        }
    }
}

#[test]
fn matching_auth_tokens_run_to_completion() {
    let job = job("sssp", 2);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let children = spawn_workers(&["connect", &addr, "--token", "the-secret"], job.workers);
    let streams = (0..job.workers)
        .map(|_| listener.accept().expect("accept").0)
        .collect();
    let config = EngineConfig {
        auth_token: Some("the-secret".into()),
        ..Default::default()
    };
    let remote =
        run_coordinator_connections_with(&job, streams, &config).expect("authenticated run");
    reap(children);
    let reference = run_local_framed(&job).expect("local run");
    assert_eq!(remote.digests, reference.digests);
    assert_eq!(remote.stats.supersteps, reference.stats.supersteps);
}

#[test]
fn self_spawning_coordinator_verifies_itself() {
    // The one-command demo: `serve --spawn --verify` forks its own workers
    // and asserts the multi-process digests equal the in-process reference.
    let output = Command::new(worker_bin())
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--algo",
            "cc",
            "--graph",
            "ba:240:3:11",
            "--strategy",
            "range-1d",
            "--spawn",
            "--verify",
        ])
        .output()
        .expect("run serve --spawn --verify");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "serve failed: {stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        stdout.contains("verified: bit-identical"),
        "missing verification line in {stdout}"
    );
}
