//! Service-mode integration: resident fragments served over framed TCP/UDS
//! must answer every query class bit-identically to cold one-shot runs,
//! multiplex different classes in flight, and survive a worker kill
//! mid-query-stream without disturbing concurrent queries.

use grape_algo::{Query, QueryResult};
use grape_core::EngineConfig;
use grape_partition::BuiltinStrategy;
use grape_worker::{
    GrapeService, GraphSpec, QueryOutcome, ServiceOptions, Session, SessionConfig, SessionGraph,
};

fn weighted_graph() -> SessionGraph {
    SessionGraph::generate(&GraphSpec::parse("ba:160:3:5").expect("spec")).expect("generator")
}

fn labeled_graph() -> SessionGraph {
    SessionGraph::generate(&GraphSpec::parse("social:60:6:21").expect("spec")).expect("generator")
}

/// Queries that run on a weighted graph.
fn weighted_queries() -> Vec<Query> {
    vec![Query::sssp(0), Query::cc(), Query::pagerank(), Query::cf()]
}

/// Queries that run on a labeled social graph (the promoted product is the
/// first product vertex: id = number of persons).
fn labeled_queries() -> Vec<Query> {
    vec![
        Query::canonical_sim(),
        Query::canonical_subiso(),
        Query::canonical_keyword(),
        Query::marketing(60),
    ]
}

/// A cold one-shot run: a fresh in-process session per query, so nothing is
/// resident or recycled between calls.
fn cold_run(
    graph: &SessionGraph,
    strategy: BuiltinStrategy,
    workers: usize,
    query: Query,
) -> QueryOutcome {
    let session = Session::connect(SessionConfig::in_process(workers)).expect("connect");
    session.load(graph, strategy).expect("load");
    session
        .submit(query)
        .expect("submit")
        .join()
        .expect("cold query")
}

#[test]
fn every_class_is_bit_identical_through_the_service_path() {
    let daemon = GrapeService::bind("127.0.0.1:0", ServiceOptions::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let endpoint = daemon.endpoint().clone();

    for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::MetisLike] {
        for workers in [2usize, 3] {
            for (graph, queries) in [
                (weighted_graph(), weighted_queries()),
                (labeled_graph(), labeled_queries()),
            ] {
                let session =
                    Session::connect(SessionConfig::remote(workers, vec![endpoint.clone()]))
                        .expect("connect");
                session.load(&graph, strategy).expect("load");
                for query in queries {
                    let label = format!("{:?}/{}/{workers}", query.class(), strategy.name());
                    let remote = session
                        .submit(query.clone())
                        .expect("submit")
                        .join()
                        .unwrap_or_else(|e| panic!("{label}: service query failed: {e}"));
                    let cold = cold_run(&graph, strategy, workers, query);
                    assert_eq!(
                        remote.result, cold.result,
                        "{label}: service result differs from the cold run"
                    );
                    assert_eq!(
                        remote.result.digest(),
                        cold.result.digest(),
                        "{label}: digests differ"
                    );
                    assert_eq!(
                        remote.stats.supersteps, cold.stats.supersteps,
                        "{label}: superstep counts differ"
                    );
                }
            }
        }
    }
    daemon.shutdown().expect("shutdown");
}

#[cfg(unix)]
#[test]
fn interleaved_classes_share_resident_fragments_over_uds() {
    let path = std::env::temp_dir().join(format!("grape-service-{}.sock", std::process::id()));
    let daemon = GrapeService::bind_uds(&path, ServiceOptions::default())
        .expect("bind uds")
        .spawn()
        .expect("spawn");
    let endpoint = daemon.endpoint().clone();
    let workers = 3;

    let graph = labeled_graph();
    let session =
        Session::connect(SessionConfig::remote(workers, vec![endpoint])).expect("connect");
    session.load(&graph, BuiltinStrategy::Hash).expect("load");

    // Two different classes in flight at once over the same loaded
    // fragments: submit both before joining either.
    let sim = session.submit(Query::canonical_sim()).expect("submit sim");
    let keyword = session
        .submit(Query::canonical_keyword())
        .expect("submit keyword");
    assert_ne!(sim.run_id(), keyword.run_id(), "run ids must be distinct");
    let sim = sim.join().expect("sim");
    let keyword = keyword.join().expect("keyword");

    assert_eq!(
        sim.result,
        cold_run(
            &graph,
            BuiltinStrategy::Hash,
            workers,
            Query::canonical_sim()
        )
        .result,
        "interleaved sim diverged"
    );
    assert_eq!(
        keyword.result,
        cold_run(
            &graph,
            BuiltinStrategy::Hash,
            workers,
            Query::canonical_keyword()
        )
        .result,
        "interleaved keyword diverged"
    );

    // Batch admission: same-class queries form one wave, classes run
    // concurrently; handles come back in submission order.
    let handles = session
        .submit_batch(vec![
            Query::canonical_sim(),
            Query::marketing(60),
            Query::canonical_sim(),
        ])
        .expect("batch");
    let outcomes: Vec<QueryOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("batch query"))
        .collect();
    assert!(matches!(outcomes[0].result, QueryResult::Matches(_)));
    assert!(matches!(outcomes[1].result, QueryResult::Prospects(_)));
    assert_eq!(
        outcomes[0].result, outcomes[2].result,
        "same query in one batch must agree with itself"
    );
    daemon.shutdown().expect("shutdown");
}

#[test]
fn worker_kill_mid_stream_leaves_the_concurrent_query_undisturbed() {
    let daemon = GrapeService::bind("127.0.0.1:0", ServiceOptions::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let endpoint = daemon.endpoint().clone();
    let workers = 3;

    let graph = weighted_graph();
    let config = SessionConfig::remote(workers, vec![endpoint])
        .with_engine(EngineConfig::builder().checkpoint_every(1).build());
    let session = Session::connect(config).expect("connect");
    session.load(&graph, BuiltinStrategy::Hash).expect("load");

    // The drill: worker 1's connection is severed upon its 2nd command,
    // while a PageRank query runs concurrently on its own connections.
    let killed = session
        .submit_with_kill(Query::sssp(0), 1, 2)
        .expect("submit kill drill");
    let concurrent = session.submit(Query::pagerank()).expect("submit pagerank");

    let killed = killed.join().expect("killed query must recover");
    let concurrent = concurrent.join().expect("concurrent query");

    assert!(
        killed.stats.recoveries >= 1,
        "the kill drill must actually trigger a recovery"
    );
    assert_eq!(
        killed.result,
        cold_run(&graph, BuiltinStrategy::Hash, workers, Query::sssp(0)).result,
        "recovered query diverged from the cold run"
    );
    assert_eq!(
        concurrent.stats.recoveries, 0,
        "the concurrent query must not observe the other query's kill"
    );
    assert_eq!(
        concurrent.result,
        cold_run(&graph, BuiltinStrategy::Hash, workers, Query::pagerank()).result,
        "concurrent query diverged from the cold run"
    );
    daemon.shutdown().expect("shutdown");
}

#[test]
fn resubmitting_a_query_yields_identical_results_and_stats() {
    // Per-query scratch state on the resident workers must reset fully
    // between queries: the second run of the same query sees the same
    // supersteps, messages, and wire bytes as the first, not residue.
    let daemon = GrapeService::bind("127.0.0.1:0", ServiceOptions::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let endpoint = daemon.endpoint().clone();
    let session = Session::connect(SessionConfig::remote(3, vec![endpoint])).expect("connect");
    session
        .load(&weighted_graph(), BuiltinStrategy::Hash)
        .expect("load");

    let first = session
        .submit(Query::sssp(0))
        .expect("submit")
        .join()
        .expect("first run");
    let second = session
        .submit(Query::sssp(0))
        .expect("submit")
        .join()
        .expect("second run");

    assert_eq!(first.result, second.result, "results differ across reruns");
    assert_ne!(
        first.stats.run_id, second.stats.run_id,
        "each submission gets its own run id"
    );
    assert_eq!(first.stats.supersteps, second.stats.supersteps);
    assert_eq!(first.stats.messages, second.stats.messages);
    assert_eq!(first.stats.bytes, second.stats.bytes);
    assert_eq!(first.stats.recoveries, second.stats.recoveries);
    daemon.shutdown().expect("shutdown");
}

#[test]
fn the_daemon_enforces_its_auth_token() {
    let daemon = GrapeService::bind(
        "127.0.0.1:0",
        ServiceOptions {
            token: Some("sesame".into()),
            ..Default::default()
        },
    )
    .expect("bind")
    .spawn()
    .expect("spawn");
    let endpoint = daemon.endpoint().clone();

    // No token: the daemon drops the connection before acking the load.
    let anon = Session::connect(SessionConfig::remote(2, vec![endpoint.clone()]))
        .expect("probe succeeds before auth is checked");
    assert!(
        anon.load(&weighted_graph(), BuiltinStrategy::Hash).is_err(),
        "an unauthenticated load must fail"
    );

    // Matching token: full query round trip.
    let config = SessionConfig::remote(2, vec![endpoint]).with_engine(
        EngineConfig::builder()
            .auth_token("sesame".to_string())
            .build(),
    );
    let session = Session::connect(config).expect("connect");
    let graph = weighted_graph();
    session.load(&graph, BuiltinStrategy::Hash).expect("load");
    let outcome = session
        .submit(Query::cc())
        .expect("submit")
        .join()
        .expect("query");
    assert_eq!(
        outcome.result,
        cold_run(&graph, BuiltinStrategy::Hash, 2, Query::cc()).result
    );
    daemon.shutdown().expect("shutdown");
}
