//! Multi-process fault drills: real `grape-worker` OS processes, one of
//! which SIGKILLs itself at a scheduled superstep, with the coordinator
//! recovering — respawn, re-ship the fragment and last checkpoint at a
//! bumped epoch, replay the in-flight superstep — and the recovered result
//! pinned bit-identical to an undisturbed run of the same job.
//!
//! The kill schedule sweeps *every* superstep index of the run, over both
//! TCP and Unix-domain sockets, for both algorithms with snapshot support
//! (SSSP and CC). Everything is deterministic: the victim dies upon
//! receiving its `kill_at`-th evaluation command, never by wall-clock.

use grape_core::EngineConfig;
use grape_worker::{
    run_coordinator_connections_recoverable, run_local_framed, GraphSpec, JobOutcome, JobSpec,
    UdsPathGuard,
};
use std::cell::RefCell;
use std::process::{Child, Command, Stdio};

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_grape-worker")
}

fn job(algo: &str) -> JobSpec {
    JobSpec {
        algo: algo.into(),
        // 10x10, seed 3: both SSSP and CC take several supersteps here, so
        // the kill sweep has real indices to cover (many road seeds let CC
        // converge in a single superstep).
        graph: GraphSpec::Road {
            width: 10,
            height: 10,
            seed: 3,
        },
        strategy: "hash".into(),
        workers: 2,
        index: 0,
        source: 0,
        threads: 1,
        vertices: 0,
        checkpoints: true,
    }
}

fn spawn_worker(args: &[String]) -> Child {
    Command::new(worker_bin())
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn grape-worker")
}

/// Waits for every child; the victim died by SIGKILL on purpose, so exit
/// statuses are not asserted — only that nothing is left running.
fn reap_lenient(children: Vec<Child>) {
    for mut child in children {
        let _ = child.wait();
    }
}

/// One TCP drill: worker 0 is the victim, dying at evaluation command
/// `kill_at`; the respawn closure hands the coordinator fresh replacement
/// processes. Spawn/accept run strictly in sequence so accepted-stream
/// order is fragment order.
fn tcp_drill(job: &JobSpec, kill_at: usize) -> JobOutcome {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let mut streams = Vec::new();
    let mut children = Vec::new();
    for index in 0..job.workers as usize {
        let mut args = vec!["connect".to_string(), addr.clone()];
        if index == 0 {
            args.extend(["--kill-at".to_string(), kill_at.to_string()]);
        }
        children.push(spawn_worker(&args));
        streams.push(listener.accept().expect("accept").0);
    }
    let children = RefCell::new(children);
    let mut respawn = |_worker: usize| {
        children
            .borrow_mut()
            .push(spawn_worker(&["connect".to_string(), addr.clone()]));
        listener.accept().map(|(s, _)| s)
    };
    let outcome = run_coordinator_connections_recoverable(
        job,
        streams,
        &EngineConfig::default(),
        &mut respawn,
    )
    .expect("recoverable run");
    reap_lenient(children.into_inner());
    outcome
}

/// The Unix-domain-socket twin of [`tcp_drill`].
#[cfg(unix)]
fn uds_drill(job: &JobSpec, kill_at: usize, tag: &str) -> JobOutcome {
    let path = std::env::temp_dir().join(format!(
        "grape-chaos-{}-{tag}-{kill_at}.sock",
        std::process::id()
    ));
    let path_str = path.to_str().expect("utf-8 socket path").to_string();
    let guard = UdsPathGuard::claim(&path).expect("claim socket path");
    let listener = std::os::unix::net::UnixListener::bind(guard.path()).expect("bind uds");
    let mut streams = Vec::new();
    let mut children = Vec::new();
    for index in 0..job.workers as usize {
        let mut args = vec!["connect-uds".to_string(), path_str.clone()];
        if index == 0 {
            args.extend(["--kill-at".to_string(), kill_at.to_string()]);
        }
        children.push(spawn_worker(&args));
        streams.push(listener.accept().expect("accept").0);
    }
    let children = RefCell::new(children);
    let mut respawn = |_worker: usize| {
        children
            .borrow_mut()
            .push(spawn_worker(&["connect-uds".to_string(), path_str.clone()]));
        listener.accept().map(|(s, _)| s)
    };
    let outcome = run_coordinator_connections_recoverable(
        job,
        streams,
        &EngineConfig::default(),
        &mut respawn,
    )
    .expect("recoverable run");
    reap_lenient(children.into_inner());
    outcome
}

/// Sweeps the kill schedule over every superstep of the reference run and
/// pins each recovered outcome against the undisturbed one.
fn sweep(algo: &str, drill: impl Fn(&JobSpec, usize) -> JobOutcome) {
    let job = job(algo);
    let reference = run_local_framed(&job).expect("reference run");
    let supersteps = reference.stats.supersteps;
    assert!(supersteps >= 2, "{algo}: job too small to drill");
    let mut kills = 0usize;
    for kill_at in 0..supersteps {
        let recovered = drill(&job, kill_at);
        assert_eq!(
            recovered.digests, reference.digests,
            "{algo} kill_at={kill_at}: recovered digests diverge"
        );
        assert_eq!(
            recovered.stats.supersteps, reference.stats.supersteps,
            "{algo} kill_at={kill_at}: superstep count diverges"
        );
        // The victim counts evaluation commands; if it reached the fixpoint
        // before `kill_at` evaluations (it received fewer IncEvals than the
        // global superstep count) the kill never fires and the run is
        // legitimately undisturbed. Every index where it does fire must
        // recover, and the sweep as a whole must have killed repeatedly.
        kills += recovered.stats.recoveries;
    }
    assert!(
        kills + 1 >= supersteps,
        "{algo}: only {kills} kills fired across {supersteps} scheduled indices"
    );
}

#[test]
fn tcp_kill_at_every_superstep_recovers_bit_identical_sssp() {
    sweep("sssp", tcp_drill);
}

#[test]
fn tcp_kill_at_every_superstep_recovers_bit_identical_cc() {
    sweep("cc", tcp_drill);
}

#[cfg(unix)]
#[test]
fn uds_kill_at_every_superstep_recovers_bit_identical_sssp() {
    sweep("sssp", |job, kill_at| uds_drill(job, kill_at, "sssp"));
}

#[cfg(unix)]
#[test]
fn uds_kill_at_every_superstep_recovers_bit_identical_cc() {
    sweep("cc", |job, kill_at| uds_drill(job, kill_at, "cc"));
}
