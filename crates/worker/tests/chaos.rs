//! Multi-process fault drills: real `grape-worker` OS processes that SIGKILL
//! themselves at scheduled supersteps, with the coordinator recovering —
//! respawn, re-ship the fragment and last checkpoint at a bumped epoch,
//! replay the commands since that checkpoint — and every recovered result
//! pinned bit-identical to an undisturbed run of the same job.
//!
//! The kill schedule sweeps *every* superstep index of the run, over both
//! TCP and Unix-domain sockets, for all eight query classes, at every
//! checkpoint cadence in `GRAPE_CHECKPOINT_EVERY` (a single cadence for CI
//! matrix entries) or {1, 2, 4} by default. Concurrent two-victim kills,
//! replacements dying mid-replay, muted workers and duplicated frames get
//! their own drills. Everything is deterministic: victims die upon receiving
//! their `kill_at`-th evaluation command, never by wall-clock.

use grape_core::chaos::ChaosConfig;
use grape_core::EngineConfig;
use grape_worker::{
    run_coordinator_connections_recoverable, run_local_framed, run_worker_connection_opts,
    GraphSpec, JobOutcome, JobSpec, UdsPathGuard, WorkerOptions,
};
use std::cell::RefCell;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_grape-worker")
}

/// The cadences a sweep covers: a single value from `GRAPE_CHECKPOINT_EVERY`
/// (how the CI matrix splits the axis) or {1, 2, 4} by default — recovery
/// must be bit-identical whatever the snapshot rhythm.
fn checkpoint_cadences() -> Vec<u32> {
    match std::env::var("GRAPE_CHECKPOINT_EVERY") {
        Ok(v) => vec![v
            .parse()
            .expect("GRAPE_CHECKPOINT_EVERY must be a positive integer")],
        Err(_) => vec![1, 2, 4],
    }
}

fn job(algo: &str) -> JobSpec {
    let labeled = matches!(algo, "sim" | "subiso" | "keyword" | "marketing");
    JobSpec {
        algo: algo.into(),
        // Small graphs with several supersteps, so the kill sweep has real
        // indices to cover: 10x10 seed 3 for the weighted classes (many road
        // seeds let CC converge in a single superstep), a small social graph
        // for the labeled pattern-matching classes.
        graph: if labeled {
            GraphSpec::Social {
                persons: 24,
                products: 4,
                seed: 5,
            }
        } else {
            GraphSpec::Road {
                width: 10,
                height: 10,
                seed: 3,
            }
        },
        strategy: "hash".into(),
        workers: 2,
        index: 0,
        source: 0,
        threads: 1,
        vertices: 0,
        checkpoint_every: 1,
        token: None,
    }
}

fn spawn_worker(args: &[String]) -> Child {
    Command::new(worker_bin())
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn grape-worker")
}

/// Waits for every child; victims died by SIGKILL on purpose, so exit
/// statuses are not asserted — only that nothing is left running.
fn reap_lenient(children: Vec<Child>) {
    for mut child in children {
        let _ = child.wait();
    }
}

/// One TCP drill with an arbitrary kill plan: each `kills` entry
/// `(worker, kill_at)` arms that initial worker to die at its `kill_at`-th
/// evaluation command; each `replacement_kills` entry is consumed by one
/// respawn of that worker, arming the *replacement* — cascading failure.
/// Spawn/accept run strictly in sequence so accepted-stream order is
/// fragment order.
fn tcp_drill_plan(
    job: &JobSpec,
    kills: &[(usize, usize)],
    replacement_kills: &[(usize, usize)],
) -> JobOutcome {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let mut streams = Vec::new();
    let mut children = Vec::new();
    for index in 0..job.workers as usize {
        let mut args = vec!["connect".to_string(), addr.clone()];
        if let Some(&(_, kill_at)) = kills.iter().find(|&&(worker, _)| worker == index) {
            args.extend(["--kill-at".to_string(), kill_at.to_string()]);
        }
        children.push(spawn_worker(&args));
        streams.push(listener.accept().expect("accept").0);
    }
    let children = RefCell::new(children);
    let pending = RefCell::new(replacement_kills.to_vec());
    let mut respawn = |worker: usize| {
        let mut args = vec!["connect".to_string(), addr.clone()];
        let position = pending.borrow().iter().position(|&(w, _)| w == worker);
        if let Some(i) = position {
            let (_, kill_at) = pending.borrow_mut().remove(i);
            args.extend(["--kill-at".to_string(), kill_at.to_string()]);
        }
        children.borrow_mut().push(spawn_worker(&args));
        listener.accept().map(|(s, _)| s)
    };
    let outcome = run_coordinator_connections_recoverable(
        job,
        streams,
        &EngineConfig::default(),
        &mut respawn,
    )
    .expect("recoverable run");
    reap_lenient(children.into_inner());
    outcome
}

fn tcp_drill(job: &JobSpec, kill_at: usize) -> JobOutcome {
    tcp_drill_plan(job, &[(0, kill_at)], &[])
}

/// The Unix-domain-socket twin of [`tcp_drill`].
#[cfg(unix)]
fn uds_drill(job: &JobSpec, kill_at: usize, tag: &str) -> JobOutcome {
    let path = std::env::temp_dir().join(format!(
        "grape-chaos-{}-{tag}-{kill_at}.sock",
        std::process::id()
    ));
    let path_str = path.to_str().expect("utf-8 socket path").to_string();
    let guard = UdsPathGuard::claim(&path).expect("claim socket path");
    let listener = std::os::unix::net::UnixListener::bind(guard.path()).expect("bind uds");
    let mut streams = Vec::new();
    let mut children = Vec::new();
    for index in 0..job.workers as usize {
        let mut args = vec!["connect-uds".to_string(), path_str.clone()];
        if index == 0 {
            args.extend(["--kill-at".to_string(), kill_at.to_string()]);
        }
        children.push(spawn_worker(&args));
        streams.push(listener.accept().expect("accept").0);
    }
    let children = RefCell::new(children);
    let mut respawn = |_worker: usize| {
        children
            .borrow_mut()
            .push(spawn_worker(&["connect-uds".to_string(), path_str.clone()]));
        listener.accept().map(|(s, _)| s)
    };
    let outcome = run_coordinator_connections_recoverable(
        job,
        streams,
        &EngineConfig::default(),
        &mut respawn,
    )
    .expect("recoverable run");
    reap_lenient(children.into_inner());
    outcome
}

/// Sweeps the kill schedule over every superstep of the reference run, at
/// every checkpoint cadence, and pins each recovered outcome against the
/// undisturbed one.
fn sweep(algo: &str, drill: impl Fn(&JobSpec, usize) -> JobOutcome) {
    let mut job = job(algo);
    for k in checkpoint_cadences() {
        job.checkpoint_every = k;
        let reference = run_local_framed(&job).expect("reference run");
        let supersteps = reference.stats.supersteps;
        assert!(supersteps >= 2, "{algo}: job too small to drill");
        let mut kills = 0usize;
        for kill_at in 0..supersteps {
            let recovered = drill(&job, kill_at);
            assert_eq!(
                recovered.digests, reference.digests,
                "{algo} k={k} kill_at={kill_at}: recovered digests diverge"
            );
            assert_eq!(
                recovered.stats.supersteps, reference.stats.supersteps,
                "{algo} k={k} kill_at={kill_at}: superstep count diverges"
            );
            // The victim counts evaluation commands; if it reached the
            // fixpoint before `kill_at` evaluations (it received fewer
            // IncEvals than the global superstep count) the kill never fires
            // and the run is legitimately undisturbed. Every index where it
            // does fire must recover, and the sweep as a whole must have
            // killed repeatedly.
            kills += recovered.stats.recoveries;
        }
        // The victim is only sent the IncEvals it has messages for, so it can
        // receive fewer evaluation commands than the global superstep count
        // (trailing schedule indices never fire); a majority still must.
        assert!(
            kills >= supersteps.div_ceil(2),
            "{algo} k={k}: only {kills} kills fired across {supersteps} scheduled indices"
        );
    }
}

#[test]
fn tcp_kill_sweep_sssp() {
    sweep("sssp", tcp_drill);
}

#[test]
fn tcp_kill_sweep_cc() {
    sweep("cc", tcp_drill);
}

#[test]
fn tcp_kill_sweep_pagerank() {
    sweep("pagerank", tcp_drill);
}

#[test]
fn tcp_kill_sweep_cf() {
    sweep("cf", tcp_drill);
}

#[test]
fn tcp_kill_sweep_sim() {
    sweep("sim", tcp_drill);
}

#[test]
fn tcp_kill_sweep_subiso() {
    sweep("subiso", tcp_drill);
}

#[test]
fn tcp_kill_sweep_keyword() {
    sweep("keyword", tcp_drill);
}

#[test]
fn tcp_kill_sweep_marketing() {
    sweep("marketing", tcp_drill);
}

#[cfg(unix)]
#[test]
fn uds_kill_sweep_sssp() {
    sweep("sssp", |job, kill_at| uds_drill(job, kill_at, "sssp"));
}

#[cfg(unix)]
#[test]
fn uds_kill_sweep_cc() {
    sweep("cc", |job, kill_at| uds_drill(job, kill_at, "cc"));
}

#[cfg(unix)]
#[test]
fn uds_kill_sweep_pagerank() {
    sweep("pagerank", |job, kill_at| {
        uds_drill(job, kill_at, "pagerank")
    });
}

#[cfg(unix)]
#[test]
fn uds_kill_sweep_cf() {
    sweep("cf", |job, kill_at| uds_drill(job, kill_at, "cf"));
}

#[cfg(unix)]
#[test]
fn uds_kill_sweep_sim() {
    sweep("sim", |job, kill_at| uds_drill(job, kill_at, "sim"));
}

#[cfg(unix)]
#[test]
fn uds_kill_sweep_subiso() {
    sweep("subiso", |job, kill_at| uds_drill(job, kill_at, "subiso"));
}

#[cfg(unix)]
#[test]
fn uds_kill_sweep_keyword() {
    sweep("keyword", |job, kill_at| uds_drill(job, kill_at, "keyword"));
}

#[cfg(unix)]
#[test]
fn uds_kill_sweep_marketing() {
    sweep("marketing", |job, kill_at| {
        uds_drill(job, kill_at, "marketing")
    });
}

#[test]
fn two_victims_in_the_same_superstep_recover_as_a_batch() {
    // Two of three real worker processes SIGKILL themselves at the same
    // evaluation command: the coordinator must recover both in one wave —
    // one epoch bump and one replay each — and still land bit-identical.
    for algo in ["sssp", "pagerank"] {
        let mut job = job(algo);
        job.workers = 3;
        let reference = run_local_framed(&job).expect("reference run");
        let kill_at = (reference.stats.supersteps - 1).min(1);
        let recovered = tcp_drill_plan(&job, &[(0, kill_at), (1, kill_at)], &[]);
        assert_eq!(recovered.digests, reference.digests, "{algo}");
        assert_eq!(
            recovered.stats.supersteps, reference.stats.supersteps,
            "{algo}"
        );
        assert!(
            recovered.stats.recoveries >= 2,
            "{algo}: both victims must have died, got {} recoveries",
            recovered.stats.recoveries
        );
    }
}

#[test]
fn a_replacement_dying_mid_replay_reenters_recovery() {
    // Cascading failure: worker 0's replacement dies on its first replayed
    // command, so recovery itself must survive a recovery in progress.
    let job = job("sssp");
    let reference = run_local_framed(&job).expect("reference run");
    let recovered = tcp_drill_plan(&job, &[(0, 1)], &[(0, 0)]);
    assert_eq!(recovered.digests, reference.digests);
    assert_eq!(recovered.stats.supersteps, reference.stats.supersteps);
    assert!(
        recovered.stats.recoveries >= 2,
        "the replacement's death must count as a second recovery, got {}",
        recovered.stats.recoveries
    );
}

#[test]
fn a_muted_worker_hits_the_timeout_path_and_is_replaced() {
    // A worker whose sends are all dropped (its reports simply never arrive)
    // is indistinguishable from a hung process: the coordinator's read
    // timeout must attribute the silence, replace the worker and recover
    // bit-identical. In-process worker threads over real TCP sockets, so
    // the chaos transport's mute mode is exercised end to end.
    let job = job("sssp");
    let reference = run_local_framed(&job).expect("reference run");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let outcome = std::thread::scope(|scope| {
        let mut streams = Vec::new();
        for index in 0..job.workers as usize {
            let connect = std::net::TcpStream::connect(addr).expect("connect");
            let (accepted, _) = listener.accept().expect("accept");
            let options = if index == 0 {
                WorkerOptions {
                    // The mute victim keeps reading and evaluating; the short
                    // read timeout bounds its life after it stops being fed.
                    read_timeout: Some(Duration::from_secs(5)),
                    chaos: ChaosConfig {
                        mute_per_mille: 1000,
                        ..Default::default()
                    },
                    ..Default::default()
                }
            } else {
                WorkerOptions::default()
            };
            scope.spawn(move || {
                let _ = run_worker_connection_opts(connect, options);
            });
            streams.push(accepted);
        }
        let listener = &listener;
        let mut respawn = |_worker: usize| {
            let connect = std::net::TcpStream::connect(addr)?;
            let (accepted, _) = listener.accept()?;
            scope.spawn(move || {
                let _ = run_worker_connection_opts(connect, WorkerOptions::default());
            });
            Ok(accepted)
        };
        let config = EngineConfig {
            read_timeout: Some(Duration::from_millis(300)),
            ..Default::default()
        };
        run_coordinator_connections_recoverable(&job, streams, &config, &mut respawn)
            .expect("recoverable run")
    });
    assert_eq!(outcome.digests, reference.digests);
    assert_eq!(outcome.stats.supersteps, reference.stats.supersteps);
    assert!(
        outcome.stats.recoveries >= 1,
        "the muted worker must have been replaced"
    );
}

#[test]
fn duplicated_frames_are_fenced_by_the_gather() {
    // Workers whose every frame is sent twice: the recoverable gather's
    // dedup must drop the echoes (they are out-of-phase reports) and land
    // on exactly the clean run's digests and superstep count.
    use grape_algo::{SsspProgram, SsspQuery};
    use grape_comm::CommStats;
    use grape_core::chaos::ChaosWorkerTransport;
    use grape_core::engine::run_worker_with;
    use grape_core::transport::framed_channel_pair;
    use grape_core::{GrapeEngine, PieProgram};
    use grape_graph::generators::{road_network, RoadNetworkConfig};
    use grape_partition::{build_fragments, BuiltinStrategy};
    use grape_worker::digest_f64_map;
    use std::sync::Arc;

    let graph = road_network(
        RoadNetworkConfig {
            width: 10,
            height: 10,
            ..Default::default()
        },
        3,
    )
    .expect("road graph");
    let assignment = BuiltinStrategy::Hash.partition(&graph, 2);
    let fragments = build_fragments(&graph, &assignment);
    let query = SsspQuery::new(0);

    let run = |duplicate_per_mille: u32| {
        let stats = Arc::new(CommStats::new());
        let (coord, worker_transports) =
            framed_channel_pair::<<SsspProgram as PieProgram>::Value>(fragments.len(), stats);
        std::thread::scope(|scope| {
            let handles: Vec<_> = fragments
                .iter()
                .zip(worker_transports)
                .map(|(fragment, wt)| {
                    let query = &query;
                    scope.spawn(move || {
                        let chaos = ChaosConfig {
                            duplicate_per_mille,
                            ..Default::default()
                        };
                        let wrapped = ChaosWorkerTransport::new(wt, chaos, Box::new(|| {}));
                        let partial =
                            run_worker_with(&SsspProgram, query, fragment, &wrapped, 1, 1)
                                .expect("worker ran");
                        digest_f64_map(&SsspProgram.assemble(vec![partial]))
                    })
                })
                .collect();
            let mut recover = |worker: usize, _epoch: u32| -> Result<(), String> {
                panic!("duplicated frames must not trigger recovery (worker {worker})")
            };
            let stats_out = GrapeEngine::new(SsspProgram)
                .run_coordinator_recoverable(&fragments, &coord, &mut recover)
                .expect("coordinator ran");
            let digests: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            (digests, stats_out.supersteps)
        })
    };

    let (clean_digests, clean_supersteps) = run(0);
    let (dup_digests, dup_supersteps) = run(1000);
    assert_eq!(dup_digests, clean_digests, "duplicates changed the answer");
    assert_eq!(dup_supersteps, clean_supersteps);
}
