//! Mutable fragments + cross-run incremental IncEval through the service:
//! after [`Session::update`] the next submission of an already-answered query
//! warm-starts from the cached fixpoint (when the algorithm is eligible for
//! the batch shape) and must be bit-identical to a cold run on the updated
//! graph — in-process and remote, across stacked update batches, and across
//! a worker kill mid-incremental-run.

use grape_algo::Query;
use grape_core::EngineConfig;
use grape_graph::labels::LabeledVertex;
use grape_graph::{DeltaGraph, GraphMutation};
use grape_partition::BuiltinStrategy;
use grape_worker::{
    GrapeService, GraphSpec, QueryOutcome, ServiceOptions, Session, SessionConfig, SessionGraph,
};
use std::collections::HashSet;

fn weighted_graph() -> SessionGraph {
    SessionGraph::generate(&GraphSpec::parse("ba:160:3:5").expect("spec")).expect("generator")
}

fn labeled_graph() -> SessionGraph {
    SessionGraph::generate(&GraphSpec::parse("social:60:6:21").expect("spec")).expect("generator")
}

/// PageRank with a local-iteration budget generous enough that every local
/// sweep drains its frontier before the cap — on the quantized grid the
/// fixpoint is then start-point independent, so warm and cold runs land on
/// identical bits.
fn patient_pagerank() -> Query {
    Query::PageRank {
        damping: 0.85,
        max_local_iterations: 200,
        tolerance: 1e-6,
    }
}

/// Insert-only batch on the BA graph: new edges between residents plus one
/// brand-new vertex wired in both directions, so ownership of an inserted
/// vertex and dense-index shifts are both exercised.
fn weighted_inserts() -> Vec<GraphMutation<(), f64>> {
    vec![
        GraphMutation::AddEdge {
            src: 0,
            dst: 155,
            data: 0.25,
        },
        GraphMutation::AddEdge {
            src: 155,
            dst: 3,
            data: 0.5,
        },
        GraphMutation::AddVertex { id: 500, data: () },
        GraphMutation::AddEdge {
            src: 2,
            dst: 500,
            data: 1.0,
        },
        GraphMutation::AddEdge {
            src: 500,
            dst: 7,
            data: 1.5,
        },
    ]
}

/// A second batch stacked on the first, so a converged state cached at
/// version 1 has to be re-seeded across the merged delta log.
fn weighted_inserts_round_two() -> Vec<GraphMutation<(), f64>> {
    vec![
        GraphMutation::AddEdge {
            src: 500,
            dst: 0,
            data: 0.75,
        },
        GraphMutation::AddEdge {
            src: 9,
            dst: 120,
            data: 0.3,
        },
    ]
}

/// Delete-only batch on the social graph: the first `count` distinct live
/// `(src, dst)` pairs (RemoveEdge drops all parallel copies at once, so the
/// pairs must be distinct within one batch).
fn labeled_deletes(
    graph: &SessionGraph,
    count: usize,
) -> Vec<GraphMutation<LabeledVertex, String>> {
    let SessionGraph::Labeled(g) = graph else {
        panic!("labeled graph expected")
    };
    let mut seen = HashSet::new();
    let mut batch = Vec::new();
    for (src, dst, _) in g.edges() {
        if seen.insert((src, dst)) {
            batch.push(GraphMutation::RemoveEdge { src, dst });
            if batch.len() == count {
                break;
            }
        }
    }
    assert_eq!(batch.len(), count, "graph too small for the delete batch");
    batch
}

/// The updated graph a cold reference run sees: the same batches applied to
/// an out-of-band delta overlay over the same base, then materialized.
fn updated_weighted(graph: &SessionGraph, batches: &[Vec<GraphMutation<(), f64>>]) -> SessionGraph {
    let SessionGraph::Weighted(g) = graph else {
        panic!("weighted graph expected")
    };
    let mut delta = DeltaGraph::new(g.clone());
    for batch in batches {
        delta.apply(batch).expect("reference apply");
    }
    SessionGraph::Weighted(delta.snapshot(g.has_reverse()))
}

fn updated_labeled(
    graph: &SessionGraph,
    batches: &[Vec<GraphMutation<LabeledVertex, String>>],
) -> SessionGraph {
    let SessionGraph::Labeled(g) = graph else {
        panic!("labeled graph expected")
    };
    let mut delta = DeltaGraph::new(g.clone());
    for batch in batches {
        delta.apply(batch).expect("reference apply");
    }
    SessionGraph::Labeled(delta.snapshot(g.has_reverse()))
}

/// A cold one-shot run: a fresh in-process session per query, so nothing is
/// resident, cached, or warm-started.
fn cold_run(
    graph: &SessionGraph,
    strategy: BuiltinStrategy,
    workers: usize,
    query: Query,
) -> QueryOutcome {
    let session = Session::connect(SessionConfig::in_process(workers)).expect("connect");
    session.load(graph, strategy).expect("load");
    session
        .submit(query)
        .expect("submit")
        .join()
        .expect("cold query")
}

/// The canonical cold reference for a warm resubmission: a fresh session
/// that replays the same update batches and then answers the query for the
/// first time — identical incrementally-updated fragments, no converged
/// cache, so PEval runs cold. (A from-scratch cut of the updated graph is
/// only bit-comparable under hash partitioning, where ownership is a pure
/// function of the vertex id — see `hash_cut_of_the_updated_graph_agrees`.)
fn cold_after_weighted_updates(
    graph: &SessionGraph,
    batches: &[Vec<GraphMutation<(), f64>>],
    strategy: BuiltinStrategy,
    workers: usize,
    query: Query,
) -> QueryOutcome {
    let session = Session::connect(SessionConfig::in_process(workers)).expect("connect");
    session.load(graph, strategy).expect("load");
    for batch in batches {
        session.update(batch.clone()).expect("replay update");
    }
    session
        .submit(query)
        .expect("submit")
        .join()
        .expect("cold query")
}

fn cold_after_labeled_updates(
    graph: &SessionGraph,
    batches: &[Vec<GraphMutation<LabeledVertex, String>>],
    strategy: BuiltinStrategy,
    workers: usize,
    query: Query,
) -> QueryOutcome {
    let session = Session::connect(SessionConfig::in_process(workers)).expect("connect");
    session.load(graph, strategy).expect("load");
    for batch in batches {
        session.update(batch.clone()).expect("replay update");
    }
    session
        .submit(query)
        .expect("submit")
        .join()
        .expect("cold query")
}

/// The drill every transport runs: load, answer once (populating the
/// converged cache), update, answer again, and demand bit-identity with a
/// cold run on the updated graph — then stack a second update and repeat.
fn drill_weighted(session: &Session, strategy: BuiltinStrategy, workers: usize) {
    let graph = weighted_graph();
    session.load(&graph, strategy).expect("load");
    let queries = vec![Query::sssp(0), Query::cc(), patient_pagerank(), Query::cf()];

    for query in &queries {
        session
            .submit(query.clone())
            .expect("submit")
            .join()
            .expect("first run");
    }

    let receipt = session.update(weighted_inserts()).expect("update");
    assert_eq!(receipt.version, 1);
    assert!(receipt.profile.insert_only());
    assert_eq!(receipt.profile.edge_inserts, 4);
    assert_eq!(receipt.profile.vertex_inserts, 1);
    assert!(receipt.dirty > 0, "inserts must dirty their endpoints");

    let round_one = [weighted_inserts()];
    for query in &queries {
        let label = format!("{:?}/{}/v1", query.class(), strategy.name());
        let warm = session
            .submit(query.clone())
            .expect("submit")
            .join()
            .unwrap_or_else(|e| panic!("{label}: post-update query failed: {e}"));
        let cold =
            cold_after_weighted_updates(&graph, &round_one, strategy, workers, query.clone());
        assert_eq!(
            warm.result, cold.result,
            "{label}: post-update answer differs from a cold run on the updated graph"
        );
        assert_eq!(
            warm.result.digest(),
            cold.result.digest(),
            "{label}: digests differ"
        );
    }

    let receipt = session
        .update(weighted_inserts_round_two())
        .expect("update");
    assert_eq!(receipt.version, 2);

    let round_two = [weighted_inserts(), weighted_inserts_round_two()];
    for query in &queries {
        let label = format!("{:?}/{}/v2", query.class(), strategy.name());
        let warm = session
            .submit(query.clone())
            .expect("submit")
            .join()
            .unwrap_or_else(|e| panic!("{label}: post-update query failed: {e}"));
        let cold =
            cold_after_weighted_updates(&graph, &round_two, strategy, workers, query.clone());
        assert_eq!(
            warm.result, cold.result,
            "{label}: answer after two stacked updates differs from cold"
        );
    }
}

/// Same drill for the labeled family: simulation is delete-eligible (the old
/// fixpoint is a superset to refine down from), keyword falls back cold —
/// both must agree with a cold run on the shrunk graph.
fn drill_labeled(session: &Session, strategy: BuiltinStrategy, workers: usize) {
    let graph = labeled_graph();
    session.load(&graph, strategy).expect("load");
    let queries = vec![Query::canonical_sim(), Query::canonical_keyword()];

    for query in &queries {
        session
            .submit(query.clone())
            .expect("submit")
            .join()
            .expect("first run");
    }

    let batch = labeled_deletes(&graph, 6);
    let receipt = session.update(batch.clone()).expect("update");
    assert_eq!(receipt.version, 1);
    assert!(receipt.profile.delete_only());
    assert_eq!(receipt.profile.edge_deletes, 6);

    let batches = [batch];
    for query in &queries {
        let label = format!("{:?}/{}", query.class(), strategy.name());
        let warm = session
            .submit(query.clone())
            .expect("submit")
            .join()
            .unwrap_or_else(|e| panic!("{label}: post-update query failed: {e}"));
        let cold = cold_after_labeled_updates(&graph, &batches, strategy, workers, query.clone());
        assert_eq!(
            warm.result, cold.result,
            "{label}: post-delete answer differs from a cold run on the shrunk graph"
        );
        assert_eq!(
            warm.result.digest(),
            cold.result.digest(),
            "{label}: digests differ"
        );
    }
}

#[test]
fn hash_cut_of_the_updated_graph_agrees_with_the_incremental_session() {
    // Under hash partitioning ownership is a pure function of the vertex id,
    // so a brand-new session loading the *updated* graph cuts it exactly as
    // the live session extended its fragments — the strongest end-to-end
    // check that `Session::update` and a from-scratch load are one graph.
    let workers = 2;
    let weighted = weighted_graph();
    let session = Session::connect(SessionConfig::in_process(workers)).expect("connect");
    session
        .load(&weighted, BuiltinStrategy::Hash)
        .expect("load");
    for query in [Query::sssp(0), Query::cc(), patient_pagerank(), Query::cf()] {
        session
            .submit(query)
            .expect("submit")
            .join()
            .expect("first run");
    }
    session.update(weighted_inserts()).expect("update");
    let fresh = updated_weighted(&weighted, &[weighted_inserts()]);
    for query in [Query::sssp(0), Query::cc(), patient_pagerank(), Query::cf()] {
        let warm = session
            .submit(query.clone())
            .expect("submit")
            .join()
            .expect("post-update run");
        let cold = cold_run(&fresh, BuiltinStrategy::Hash, workers, query.clone());
        assert_eq!(
            warm.result,
            cold.result,
            "{:?}: live session diverged from a fresh load of the updated graph",
            query.class()
        );
    }

    let labeled = labeled_graph();
    let session = Session::connect(SessionConfig::in_process(workers)).expect("connect");
    session.load(&labeled, BuiltinStrategy::Hash).expect("load");
    for query in [Query::canonical_sim(), Query::canonical_keyword()] {
        session
            .submit(query)
            .expect("submit")
            .join()
            .expect("first run");
    }
    let batch = labeled_deletes(&labeled, 6);
    session.update(batch.clone()).expect("update");
    let fresh = updated_labeled(&labeled, &[batch]);
    for query in [Query::canonical_sim(), Query::canonical_keyword()] {
        let warm = session
            .submit(query.clone())
            .expect("submit")
            .join()
            .expect("post-update run");
        let cold = cold_run(&fresh, BuiltinStrategy::Hash, workers, query.clone());
        assert_eq!(
            warm.result,
            cold.result,
            "{:?}: live session diverged from a fresh load of the shrunk graph",
            query.class()
        );
    }
}

#[test]
fn updates_then_queries_match_cold_runs_in_process() {
    let workers = 2;
    for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::MetisLike] {
        let session = Session::connect(SessionConfig::in_process(workers)).expect("connect");
        drill_weighted(&session, strategy, workers);
        let session = Session::connect(SessionConfig::in_process(workers)).expect("connect");
        drill_labeled(&session, strategy, workers);
    }
}

#[test]
fn updates_then_queries_match_cold_runs_over_the_wire() {
    let daemon = GrapeService::bind("127.0.0.1:0", ServiceOptions::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let endpoint = daemon.endpoint().clone();
    let workers = 3;

    let session =
        Session::connect(SessionConfig::remote(workers, vec![endpoint.clone()])).expect("connect");
    drill_weighted(&session, BuiltinStrategy::Hash, workers);

    let session =
        Session::connect(SessionConfig::remote(workers, vec![endpoint])).expect("connect");
    drill_labeled(&session, BuiltinStrategy::MetisLike, workers);

    daemon.shutdown().expect("shutdown");
}

#[test]
fn a_worker_kill_mid_incremental_run_recovers_to_the_updated_answer() {
    let daemon = GrapeService::bind("127.0.0.1:0", ServiceOptions::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let endpoint = daemon.endpoint().clone();
    let workers = 3;

    let graph = weighted_graph();
    let config = SessionConfig::remote(workers, vec![endpoint])
        .with_engine(EngineConfig::builder().checkpoint_every(1).build());
    let session = Session::connect(config).expect("connect");
    session.load(&graph, BuiltinStrategy::Hash).expect("load");

    // Converge once so the update's resubmission takes the warm path, then
    // sever worker 1 mid-incremental-run: recovery replays the job — seed
    // included, since it rides on the job spec — and the answer must still
    // be bit-identical to a cold run on the updated graph.
    session
        .submit(Query::sssp(0))
        .expect("submit")
        .join()
        .expect("first run");
    session.update(weighted_inserts()).expect("update");

    let killed = session
        .submit_with_kill(Query::sssp(0), 1, 2)
        .expect("submit kill drill")
        .join()
        .expect("killed query must recover");
    assert!(
        killed.stats.recoveries >= 1,
        "the kill drill must actually trigger a recovery"
    );

    let once = updated_weighted(&graph, &[weighted_inserts()]);
    let cold = cold_run(&once, BuiltinStrategy::Hash, workers, Query::sssp(0));
    assert_eq!(
        killed.result, cold.result,
        "recovered incremental run diverged from a cold run on the updated graph"
    );
    assert_eq!(killed.result.digest(), cold.result.digest());
    daemon.shutdown().expect("shutdown");
}

#[test]
fn updates_reject_family_mismatches_and_advance_versions() {
    let session = Session::connect(SessionConfig::in_process(2)).expect("connect");
    session
        .load(&weighted_graph(), BuiltinStrategy::Hash)
        .expect("load");

    // A labeled batch against a weighted graph is refused outright.
    let err = session
        .update(labeled_deletes(&labeled_graph(), 1))
        .expect_err("family mismatch must fail");
    assert!(
        err.to_string().contains("family"),
        "unexpected error: {err}"
    );

    // Versions advance one per accepted batch, mismatches notwithstanding.
    assert_eq!(
        session.update(weighted_inserts()).expect("update").version,
        1
    );
    assert_eq!(
        session
            .update(weighted_inserts_round_two())
            .expect("update")
            .version,
        2
    );
}
