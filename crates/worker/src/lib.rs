//! # grape-worker
//!
//! Runs GRAPE workers as **separate OS processes**, speaking the framed wire
//! protocol of [`grape_comm::wire`] over TCP or Unix-domain sockets.
//!
//! The division of labour mirrors the paper's deployment: a coordinator
//! process owns the graph, partitions it, and drives the BSP fixpoint
//! ([`grape_core::GrapeEngine::run_coordinator`]); each worker process owns
//! one fragment and runs the *unchanged* PIE program through
//! [`grape_core::run_worker`] — the same function the in-process threaded
//! driver uses, pointed at a socket instead of a channel.
//!
//! ## Session protocol
//!
//! 1. the worker connects and the coordinator sends one [`TAG_JOB`] frame:
//!    a [`JobSpec`] naming the algorithm, the (deterministic) graph, the
//!    partition strategy, the worker count and this worker's fragment index;
//! 2. the worker rebuilds graph + fragment locally (generation is seeded and
//!    cross-process deterministic since PR 3) and enters the BSP loop:
//!    `Init` → PEval report → (`IncEval` → report)* → `Finish`;
//! 3. after `Finish` the worker assembles its own partial result, sends a
//!    [`TAG_DIGEST`] frame (an order-independent FNV digest of the
//!    `(vertex, value-bits)` pairs), and exits. The coordinator collects one
//!    digest per worker, which the tests compare bit-for-bit against an
//!    in-process run of the same job.

#![warn(missing_docs)]

use grape_algo::{CcProgram, CcQuery, PageRankProgram, PageRankQuery, SsspProgram, SsspQuery};
use grape_comm::wire::{self, Wire, WireError, WireReader};
use grape_comm::CommStats;
use grape_core::par::ThreadCount;
use grape_core::transport::{
    framed_channel_pair, FramedStreamCoord, FramedStreamWorker, SplitStream,
};
use grape_core::{run_worker, GrapeEngine, PieProgram, RunStats};
use grape_graph::generators::{barabasi_albert, road_network, RoadNetworkConfig};
use grape_graph::{VertexId, WeightedGraph};
use grape_partition::{build_fragments, BuiltinStrategy, Fragment};
use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Frame tag of the coordinator→worker [`JobSpec`] handshake.
pub const TAG_JOB: u8 = 0x20;
/// Frame tag of the worker→coordinator result digest.
pub const TAG_DIGEST: u8 = 0x21;

/// A deterministic graph recipe both endpoints can rebuild independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSpec {
    /// `road_network(width × height, seed)` with default lake/shortcut
    /// probabilities.
    Road {
        /// Grid width.
        width: u32,
        /// Grid height.
        height: u32,
        /// Generator seed.
        seed: u64,
    },
    /// `barabasi_albert(n, m, seed)`.
    Ba {
        /// Number of vertices.
        n: u32,
        /// Edges per new vertex.
        m: u32,
        /// Generator seed.
        seed: u64,
    },
}

impl Wire for GraphSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GraphSpec::Road {
                width,
                height,
                seed,
            } => {
                0u8.encode(out);
                width.encode(out);
                height.encode(out);
                seed.encode(out);
            }
            GraphSpec::Ba { n, m, seed } => {
                1u8.encode(out);
                n.encode(out);
                m.encode(out);
                seed.encode(out);
            }
        }
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(GraphSpec::Road {
                width: reader.u32()?,
                height: reader.u32()?,
                seed: reader.u64()?,
            }),
            1 => Ok(GraphSpec::Ba {
                n: reader.u32()?,
                m: reader.u32()?,
                seed: reader.u64()?,
            }),
            other => Err(WireError::BadTag { found: other }),
        }
    }
}

impl GraphSpec {
    /// Parses `road:WxH:SEED` or `ba:N:M:SEED`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let parts: Vec<&str> = text.split(':').collect();
        let num = |s: &str| -> Result<u64, String> {
            s.parse::<u64>().map_err(|_| format!("bad number {s:?}"))
        };
        match parts.as_slice() {
            ["road", dims, seed] => {
                let (w, h) = dims
                    .split_once('x')
                    .ok_or_else(|| format!("bad dimensions {dims:?}, expected WxH"))?;
                Ok(GraphSpec::Road {
                    width: num(w)? as u32,
                    height: num(h)? as u32,
                    seed: num(seed)?,
                })
            }
            ["ba", n, m, seed] => Ok(GraphSpec::Ba {
                n: num(n)? as u32,
                m: num(m)? as u32,
                seed: num(seed)?,
            }),
            _ => Err(format!(
                "bad graph spec {text:?}; expected road:WxH:SEED or ba:N:M:SEED"
            )),
        }
    }

    /// Builds the graph this spec describes.
    pub fn build(&self) -> WeightedGraph {
        match self {
            GraphSpec::Road {
                width,
                height,
                seed,
            } => road_network(
                RoadNetworkConfig {
                    width: *width as usize,
                    height: *height as usize,
                    ..Default::default()
                },
                *seed,
            )
            .expect("valid road-network spec"),
            GraphSpec::Ba { n, m, seed } => {
                barabasi_albert(*n as usize, *m as usize, *seed).expect("valid BA spec")
            }
        }
    }
}

/// Everything a worker process needs to participate in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Algorithm name: `sssp`, `cc` or `pagerank`.
    pub algo: String,
    /// The graph both endpoints rebuild.
    pub graph: GraphSpec,
    /// Partition strategy name (a [`BuiltinStrategy::name`]).
    pub strategy: String,
    /// Total number of workers / fragments.
    pub workers: u32,
    /// This worker's fragment index (set per connection by the coordinator).
    pub index: u32,
    /// SSSP source vertex (ignored by other algorithms).
    pub source: u64,
    /// Intra-worker threads for the PIE hot loops (0 = auto: physical cores
    /// divided by the worker count).
    pub threads: u32,
}

impl JobSpec {
    /// The resolved intra-worker thread count this spec asks for.
    pub fn resolved_threads(&self) -> usize {
        let count = if self.threads == 0 {
            ThreadCount::Auto
        } else {
            ThreadCount::Fixed(self.threads)
        };
        count.resolve(self.workers as usize, false)
    }
}

impl Wire for JobSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.algo.encode(out);
        self.graph.encode(out);
        self.strategy.encode(out);
        self.workers.encode(out);
        self.index.encode(out);
        self.source.encode(out);
        self.threads.encode(out);
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(JobSpec {
            algo: String::decode(reader)?,
            graph: GraphSpec::decode(reader)?,
            strategy: String::decode(reader)?,
            workers: reader.u32()?,
            index: reader.u32()?,
            source: reader.u64()?,
            threads: reader.u32()?,
        })
    }
}

/// Looks up a partition strategy by its [`BuiltinStrategy::name`].
pub fn strategy_by_name(name: &str) -> Option<BuiltinStrategy> {
    BuiltinStrategy::all()
        .iter()
        .copied()
        .find(|s| s.name() == name)
}

fn bad_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Order-independent FNV-1a digest of `(vertex, value-bits)` pairs: XOR of
/// per-pair hashes, so iteration order (HashMap, process) cannot leak in.
fn digest_pairs(pairs: impl Iterator<Item = (u64, u64)>) -> u64 {
    let mut acc = 0u64;
    for (k, v) in pairs {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in k.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        acc ^= h;
    }
    acc
}

/// Digest of a vertex→`f64` result map (bit-exact on the values).
pub fn digest_f64_map(map: &HashMap<VertexId, f64>) -> u64 {
    digest_pairs(map.iter().map(|(&k, &v)| (k, v.to_bits())))
}

/// Digest of a vertex→vertex result map.
pub fn digest_u64_map(map: &HashMap<VertexId, VertexId>) -> u64 {
    digest_pairs(map.iter().map(|(&k, &v)| (k, v)))
}

/// The outcome of one coordinated run: the coordinator's statistics plus one
/// result digest per worker (in worker order).
#[derive(Debug)]
pub struct JobOutcome {
    /// Run statistics as reported by the coordinator (supersteps, messages,
    /// actual wire bytes, timings).
    pub stats: RunStats,
    /// Per-worker digests of the fragments' assembled partial results.
    pub digests: Vec<u64>,
}

/// Builds `job`'s graph and its fragments exactly as both endpoints must.
/// The graph is returned alongside so callers never generate it twice
/// (PageRank needs the global vertex count).
fn job_fragments(job: &JobSpec) -> io::Result<(WeightedGraph, Vec<Fragment<(), f64>>)> {
    let graph = job.graph.build();
    let strategy = strategy_by_name(&job.strategy)
        .ok_or_else(|| bad_data(format!("unknown strategy {:?}", job.strategy)))?;
    let assignment = strategy.partition(&graph, job.workers as usize);
    let fragments = build_fragments(&graph, &assignment);
    Ok((graph, fragments))
}

/// Runs one worker over an already-established connection: reads the
/// [`JobSpec`] frame, rebuilds its fragment, serves the BSP loop, sends the
/// digest, and returns it.
pub fn run_worker_connection<S: SplitStream>(mut stream: S) -> io::Result<u64> {
    let (tag, body) = wire::read_frame_io(&mut stream)?
        .ok_or_else(|| bad_data("connection closed before the job spec"))?;
    if tag != TAG_JOB {
        return Err(bad_data(format!("expected job frame, got tag {tag:#04x}")));
    }
    let mut reader = WireReader::new(&body);
    let job = JobSpec::decode(&mut reader)
        .and_then(|job| reader.finish().map(|()| job))
        .map_err(|e| bad_data(format!("bad job spec: {e}")))?;
    if job.index >= job.workers {
        return Err(bad_data(format!(
            "fragment index {} out of range for {} workers",
            job.index, job.workers
        )));
    }
    let (graph, fragments) = job_fragments(&job)?;
    let fragment = &fragments[job.index as usize];
    let stats = Arc::new(CommStats::new());

    fn serve<P, S>(
        program: P,
        query: &P::Query,
        fragment: &Fragment<(), f64>,
        stream: S,
        stats: Arc<CommStats>,
        threads: usize,
        to_digest: impl Fn(P::Output) -> u64,
    ) -> io::Result<u64>
    where
        P: PieProgram<VertexData = (), EdgeData = f64>,
        S: SplitStream,
    {
        let transport = FramedStreamWorker::<P::Value>::new(stream, stats)?;
        let partial = run_worker(&program, query, fragment, &transport, threads);
        // The worker loop also stops on connection failure; only a clean
        // Finish-terminated run may report a digest as success.
        if let Some(reason) = transport.disconnect_reason() {
            return Err(io::Error::other(format!("run torn down: {reason}")));
        }
        // Assembling a single partial yields this fragment's view of the
        // answer — the unit the coordinator's verification digests compare.
        let digest = to_digest(program.assemble(vec![partial]));
        transport.send_oob(TAG_DIGEST, &digest)?;
        Ok(digest)
    }

    let threads = job.resolved_threads();
    match job.algo.as_str() {
        "sssp" => serve(
            SsspProgram,
            &SsspQuery::new(job.source),
            fragment,
            stream,
            stats,
            threads,
            |out| digest_f64_map(&out),
        ),
        "cc" => serve(
            CcProgram,
            &CcQuery,
            fragment,
            stream,
            stats,
            threads,
            |out| digest_u64_map(&out),
        ),
        "pagerank" => {
            let program = PageRankProgram::new(graph.num_vertices());
            serve(
                program,
                &PageRankQuery::default(),
                fragment,
                stream,
                stats,
                threads,
                |out| digest_f64_map(&out),
            )
        }
        other => Err(bad_data(format!("unknown algorithm {other:?}"))),
    }
}

/// Runs the coordinator over `streams` (one accepted connection per worker,
/// in fragment order): ships each worker its [`JobSpec`], drives the BSP
/// fixpoint, and collects the result digests.
pub fn run_coordinator_connections<S: SplitStream>(
    job: &JobSpec,
    streams: Vec<S>,
) -> io::Result<JobOutcome> {
    run_coordinator_connections_with(job, streams, grape_core::transport::DEFAULT_READ_TIMEOUT)
}

/// Like [`run_coordinator_connections`], with an explicit per-receive read
/// timeout: if no worker report arrives within `read_timeout`, the run fails
/// with a typed [`grape_core::TransportError::WorkerLost`] instead of
/// hanging. [`run_coordinator_connections`] uses
/// [`grape_core::transport::DEFAULT_READ_TIMEOUT`].
pub fn run_coordinator_connections_with<S: SplitStream>(
    job: &JobSpec,
    mut streams: Vec<S>,
    read_timeout: Duration,
) -> io::Result<JobOutcome> {
    if streams.len() != job.workers as usize {
        return Err(bad_data(format!(
            "{} connections for {} workers",
            streams.len(),
            job.workers
        )));
    }
    let (graph, fragments) = job_fragments(job)?;
    for (index, stream) in streams.iter_mut().enumerate() {
        let mut spec = job.clone();
        spec.index = index as u32;
        wire::write_frame_io(stream, TAG_JOB, &spec)?;
        stream.flush()?;
    }
    let stats = Arc::new(CommStats::new());

    fn coordinate<P, S>(
        program: P,
        fragments: &[Fragment<(), f64>],
        streams: Vec<S>,
        stats: Arc<CommStats>,
        read_timeout: Duration,
    ) -> io::Result<JobOutcome>
    where
        P: PieProgram<VertexData = (), EdgeData = f64>,
        S: SplitStream,
    {
        let n = streams.len();
        let transport = FramedStreamCoord::<P::Value>::new(streams, stats)?
            .with_read_timeout(Some(read_timeout));
        let stats_out = GrapeEngine::new(program)
            .run_coordinator(fragments, &transport)
            .map_err(|e| io::Error::other(e.to_string()))?;
        let mut digests = vec![0u64; n];
        for _ in 0..n {
            let (from, tag, body) = transport
                .recv_oob_blocking()
                .ok_or_else(|| bad_data("a worker closed before sending its digest"))?;
            if tag != TAG_DIGEST {
                return Err(bad_data(format!("expected digest frame, got {tag:#04x}")));
            }
            let mut reader = WireReader::new(&body);
            digests[from] = u64::decode(&mut reader)
                .and_then(|d| reader.finish().map(|()| d))
                .map_err(|e| bad_data(format!("bad digest frame: {e}")))?;
        }
        Ok(JobOutcome {
            stats: stats_out,
            digests,
        })
    }

    match job.algo.as_str() {
        "sssp" => coordinate(SsspProgram, &fragments, streams, stats, read_timeout),
        "cc" => coordinate(CcProgram, &fragments, streams, stats, read_timeout),
        "pagerank" => {
            let program = PageRankProgram::new(graph.num_vertices());
            coordinate(program, &fragments, streams, stats, read_timeout)
        }
        other => Err(bad_data(format!("unknown algorithm {other:?}"))),
    }
}

/// Runs the identical job fully in-process over the framed *channel*
/// transport: the reference the multi-process path must match bit for bit
/// (digests, supersteps, message counts). Also doubles as an executable
/// example of the public transport API.
pub fn run_local_framed(job: &JobSpec) -> io::Result<JobOutcome> {
    let (graph, fragments) = job_fragments(job)?;
    let stats = Arc::new(CommStats::new());
    let threads = job.resolved_threads();

    fn local<P>(
        program: P,
        query: &P::Query,
        fragments: &[Fragment<(), f64>],
        stats: Arc<CommStats>,
        threads: usize,
        to_digest: impl Fn(P::Output) -> u64 + Sync,
    ) -> io::Result<JobOutcome>
    where
        P: PieProgram<VertexData = (), EdgeData = f64> + Clone,
    {
        let n = fragments.len();
        let (coord, worker_transports) = framed_channel_pair::<P::Value>(n, stats);
        let program_ref = &program;
        let to_digest = &to_digest;
        std::thread::scope(|scope| {
            let handles: Vec<_> = fragments
                .iter()
                .zip(worker_transports)
                .map(|(fragment, wt)| {
                    scope.spawn(move || {
                        let partial = run_worker(program_ref, query, fragment, &wt, threads);
                        to_digest(program_ref.assemble(vec![partial]))
                    })
                })
                .collect();
            let stats_out = GrapeEngine::new(program.clone())
                .run_coordinator(fragments, &coord)
                .map_err(|e| io::Error::other(e.to_string()))?;
            let digests = handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect();
            Ok(JobOutcome {
                stats: stats_out,
                digests,
            })
        })
    }

    match job.algo.as_str() {
        "sssp" => local(
            SsspProgram,
            &SsspQuery::new(job.source),
            &fragments,
            stats,
            threads,
            |out| digest_f64_map(&out),
        ),
        "cc" => local(CcProgram, &CcQuery, &fragments, stats, threads, |out| {
            digest_u64_map(&out)
        }),
        "pagerank" => {
            let program = PageRankProgram::new(graph.num_vertices());
            local(
                program,
                &PageRankQuery::default(),
                &fragments,
                stats,
                threads,
                |out| digest_f64_map(&out),
            )
        }
        other => Err(bad_data(format!("unknown algorithm {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_wire_roundtrip() {
        let job = JobSpec {
            algo: "sssp".into(),
            graph: GraphSpec::Road {
                width: 12,
                height: 9,
                seed: 7,
            },
            strategy: "hash".into(),
            workers: 4,
            index: 2,
            source: 0,
            threads: 2,
        };
        let bytes = job.encode_to_vec();
        let mut reader = WireReader::new(&bytes);
        assert_eq!(JobSpec::decode(&mut reader).unwrap(), job);
        reader.finish().unwrap();
    }

    #[test]
    fn graph_spec_parsing() {
        assert_eq!(
            GraphSpec::parse("road:12x9:7").unwrap(),
            GraphSpec::Road {
                width: 12,
                height: 9,
                seed: 7
            }
        );
        assert_eq!(
            GraphSpec::parse("ba:300:3:11").unwrap(),
            GraphSpec::Ba {
                n: 300,
                m: 3,
                seed: 11
            }
        );
        assert!(GraphSpec::parse("road:12:7").is_err());
        assert!(GraphSpec::parse("lattice:3").is_err());
    }

    #[test]
    fn digests_are_order_independent_and_value_sensitive() {
        let mut a = HashMap::new();
        a.insert(1u64, 1.5f64);
        a.insert(2, 2.5);
        let mut b = HashMap::new();
        b.insert(2u64, 2.5f64);
        b.insert(1, 1.5);
        assert_eq!(digest_f64_map(&a), digest_f64_map(&b));
        b.insert(1, 1.5000001);
        assert_ne!(digest_f64_map(&a), digest_f64_map(&b));
    }

    #[test]
    fn local_framed_runs_agree_across_algorithms() {
        // The in-process framed reference itself must be deterministic and
        // match the plain engine's superstep counts.
        for algo in ["sssp", "cc", "pagerank"] {
            let job = JobSpec {
                algo: algo.into(),
                graph: GraphSpec::Ba {
                    n: 200,
                    m: 3,
                    seed: 5,
                },
                strategy: "hash".into(),
                workers: 3,
                index: 0,
                source: 0,
                threads: 1,
            };
            let first = run_local_framed(&job).unwrap();
            let second = run_local_framed(&job).unwrap();
            assert_eq!(first.digests, second.digests, "{algo}");
            assert_eq!(first.stats.supersteps, second.stats.supersteps, "{algo}");
            assert_eq!(first.stats.messages, second.stats.messages, "{algo}");
            assert!(first.stats.bytes > 0);
        }
    }
}
