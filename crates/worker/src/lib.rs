//! # grape-worker
//!
//! Runs GRAPE workers as **separate OS processes**, speaking the framed wire
//! protocol of [`grape_comm::wire`] over TCP or Unix-domain sockets.
//!
//! The division of labour mirrors the paper's deployment: a coordinator
//! process owns the graph, partitions it, and drives the BSP fixpoint
//! ([`grape_core::GrapeEngine::run_coordinator`]); each worker process owns
//! one fragment and runs the *unchanged* PIE program through
//! [`grape_core::run_worker`] — the same function the in-process threaded
//! driver uses, pointed at a socket instead of a channel.
//!
//! ## Session protocol
//!
//! 1. the worker connects and the coordinator sends one epoch-stamped
//!    [`TAG_JOB`] frame — a [`JobSpec`] naming the algorithm, the partition
//!    strategy, the worker count and this worker's fragment index — followed
//!    by one [`TAG_FRAGMENT`] frame *shipping the fragment itself* (CSR
//!    edges, border tables, weights). The worker adopts the job frame's
//!    epoch as its run epoch; it never regenerates the graph locally;
//! 2. the worker rebuilds the fragment from the shipped bytes
//!    (bit-identical to a locally cut one) and enters the BSP loop:
//!    `Init` → PEval report → (`IncEval` → report)* → `Finish`;
//! 3. after `Finish` the worker assembles its own partial result, sends a
//!    [`TAG_DIGEST`] frame (an order-independent FNV digest of the
//!    `(vertex, value-bits)` pairs), and exits. The coordinator collects one
//!    digest per worker, which the tests compare bit-for-bit against an
//!    in-process run of the same job.
//!
//! ## Fault tolerance
//!
//! With [`JobSpec::checkpoints`] set, every worker report carries a snapshot
//! of its dense local state, and
//! [`run_coordinator_connections_recoverable`] survives worker loss: the
//! run epoch is bumped, a replacement process is spawned and handed the lost
//! fragment plus the last checkpoint at the new epoch, the in-flight
//! superstep is replayed, and frames still in flight from the dead
//! connection are fenced by their stale epoch tag. Recovered runs are
//! bit-identical to undisturbed ones.

#![warn(missing_docs)]

use grape_algo::{CcProgram, CcQuery, PageRankProgram, PageRankQuery, SsspProgram, SsspQuery};
use grape_comm::wire::{self, Wire, WireError, WireReader};
use grape_comm::CommStats;
use grape_core::chaos::{ChaosConfig, ChaosWorkerTransport};
use grape_core::engine::run_worker_with;
use grape_core::par::ThreadCount;
use grape_core::transport::{
    framed_channel_pair, FramedStreamCoord, FramedStreamWorker, SplitStream,
};
use grape_core::{
    decode_fragment, encode_fragment_epoch, EngineConfig, GrapeEngine, PieProgram, RunStats,
    TAG_FRAGMENT,
};
use grape_graph::generators::{barabasi_albert, road_network, RoadNetworkConfig};
use grape_graph::{VertexId, WeightedGraph};
use grape_partition::{build_fragments, BuiltinStrategy, Fragment};
use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Frame tag of the coordinator→worker [`JobSpec`] handshake.
pub const TAG_JOB: u8 = 0x20;
/// Frame tag of the worker→coordinator result digest.
pub const TAG_DIGEST: u8 = 0x21;

/// A deterministic graph recipe both endpoints can rebuild independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSpec {
    /// `road_network(width × height, seed)` with default lake/shortcut
    /// probabilities.
    Road {
        /// Grid width.
        width: u32,
        /// Grid height.
        height: u32,
        /// Generator seed.
        seed: u64,
    },
    /// `barabasi_albert(n, m, seed)`.
    Ba {
        /// Number of vertices.
        n: u32,
        /// Edges per new vertex.
        m: u32,
        /// Generator seed.
        seed: u64,
    },
}

impl Wire for GraphSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GraphSpec::Road {
                width,
                height,
                seed,
            } => {
                0u8.encode(out);
                width.encode(out);
                height.encode(out);
                seed.encode(out);
            }
            GraphSpec::Ba { n, m, seed } => {
                1u8.encode(out);
                n.encode(out);
                m.encode(out);
                seed.encode(out);
            }
        }
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(GraphSpec::Road {
                width: reader.u32()?,
                height: reader.u32()?,
                seed: reader.u64()?,
            }),
            1 => Ok(GraphSpec::Ba {
                n: reader.u32()?,
                m: reader.u32()?,
                seed: reader.u64()?,
            }),
            other => Err(WireError::BadTag { found: other }),
        }
    }
}

impl GraphSpec {
    /// Parses `road:WxH:SEED` or `ba:N:M:SEED`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let parts: Vec<&str> = text.split(':').collect();
        let num = |s: &str| -> Result<u64, String> {
            s.parse::<u64>().map_err(|_| format!("bad number {s:?}"))
        };
        match parts.as_slice() {
            ["road", dims, seed] => {
                let (w, h) = dims
                    .split_once('x')
                    .ok_or_else(|| format!("bad dimensions {dims:?}, expected WxH"))?;
                Ok(GraphSpec::Road {
                    width: num(w)? as u32,
                    height: num(h)? as u32,
                    seed: num(seed)?,
                })
            }
            ["ba", n, m, seed] => Ok(GraphSpec::Ba {
                n: num(n)? as u32,
                m: num(m)? as u32,
                seed: num(seed)?,
            }),
            _ => Err(format!(
                "bad graph spec {text:?}; expected road:WxH:SEED or ba:N:M:SEED"
            )),
        }
    }

    /// Builds the graph this spec describes.
    pub fn build(&self) -> WeightedGraph {
        match self {
            GraphSpec::Road {
                width,
                height,
                seed,
            } => road_network(
                RoadNetworkConfig {
                    width: *width as usize,
                    height: *height as usize,
                    ..Default::default()
                },
                *seed,
            )
            .expect("valid road-network spec"),
            GraphSpec::Ba { n, m, seed } => {
                barabasi_albert(*n as usize, *m as usize, *seed).expect("valid BA spec")
            }
        }
    }
}

/// Everything a worker process needs to participate in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Algorithm name: `sssp`, `cc` or `pagerank`.
    pub algo: String,
    /// The graph both endpoints rebuild.
    pub graph: GraphSpec,
    /// Partition strategy name (a [`BuiltinStrategy::name`]).
    pub strategy: String,
    /// Total number of workers / fragments.
    pub workers: u32,
    /// This worker's fragment index (set per connection by the coordinator).
    pub index: u32,
    /// SSSP source vertex (ignored by other algorithms).
    pub source: u64,
    /// Intra-worker threads for the PIE hot loops (0 = auto: physical cores
    /// divided by the worker count).
    pub threads: u32,
    /// Global vertex count, filled in by the coordinator when it ships the
    /// job (workers no longer build the graph, and PageRank needs |V|).
    pub vertices: u64,
    /// Ask every worker report to carry a checkpoint of its dense local
    /// state — the prerequisite for worker-loss recovery.
    pub checkpoints: bool,
}

impl JobSpec {
    /// The resolved intra-worker thread count this spec asks for.
    pub fn resolved_threads(&self) -> usize {
        let count = if self.threads == 0 {
            ThreadCount::Auto
        } else {
            ThreadCount::Fixed(self.threads)
        };
        count.resolve(self.workers as usize, false)
    }
}

impl Wire for JobSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.algo.encode(out);
        self.graph.encode(out);
        self.strategy.encode(out);
        self.workers.encode(out);
        self.index.encode(out);
        self.source.encode(out);
        self.threads.encode(out);
        self.vertices.encode(out);
        self.checkpoints.encode(out);
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(JobSpec {
            algo: String::decode(reader)?,
            graph: GraphSpec::decode(reader)?,
            strategy: String::decode(reader)?,
            workers: reader.u32()?,
            index: reader.u32()?,
            source: reader.u64()?,
            threads: reader.u32()?,
            vertices: reader.u64()?,
            checkpoints: bool::decode(reader)?,
        })
    }
}

/// Looks up a partition strategy by its [`BuiltinStrategy::name`].
pub fn strategy_by_name(name: &str) -> Option<BuiltinStrategy> {
    BuiltinStrategy::all()
        .iter()
        .copied()
        .find(|s| s.name() == name)
}

fn bad_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Order-independent FNV-1a digest of `(vertex, value-bits)` pairs: XOR of
/// per-pair hashes, so iteration order (HashMap, process) cannot leak in.
fn digest_pairs(pairs: impl Iterator<Item = (u64, u64)>) -> u64 {
    let mut acc = 0u64;
    for (k, v) in pairs {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in k.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        acc ^= h;
    }
    acc
}

/// Digest of a vertex→`f64` result map (bit-exact on the values).
pub fn digest_f64_map(map: &HashMap<VertexId, f64>) -> u64 {
    digest_pairs(map.iter().map(|(&k, &v)| (k, v.to_bits())))
}

/// Digest of a vertex→vertex result map.
pub fn digest_u64_map(map: &HashMap<VertexId, VertexId>) -> u64 {
    digest_pairs(map.iter().map(|(&k, &v)| (k, v)))
}

/// The outcome of one coordinated run: the coordinator's statistics plus one
/// result digest per worker (in worker order).
#[derive(Debug)]
pub struct JobOutcome {
    /// Run statistics as reported by the coordinator (supersteps, messages,
    /// actual wire bytes, timings).
    pub stats: RunStats,
    /// Per-worker digests of the fragments' assembled partial results.
    pub digests: Vec<u64>,
}

/// Builds `job`'s graph and its fragments exactly as both endpoints must.
/// The graph is returned alongside so callers never generate it twice
/// (PageRank needs the global vertex count).
fn job_fragments(job: &JobSpec) -> io::Result<(WeightedGraph, Vec<Fragment<(), f64>>)> {
    let graph = job.graph.build();
    let strategy = strategy_by_name(&job.strategy)
        .ok_or_else(|| bad_data(format!("unknown strategy {:?}", job.strategy)))?;
    let assignment = strategy.partition(&graph, job.workers as usize);
    let fragments = build_fragments(&graph, &assignment);
    Ok((graph, fragments))
}

/// A worker's kill schedule: SIGKILL-equivalent death upon *receiving* the
/// command with this index (0 = the Init handshake), plus the action that
/// performs the death — the `grape-worker` binary SIGKILLs its own process;
/// in-process harnesses shut the socket down, which is the same event at
/// the transport level.
pub type KillPlan = (usize, Box<dyn FnMut() + Send>);

/// SIGKILLs the calling process: the real thing for multi-process chaos
/// drills — no unwinding, no flushes, no goodbye frame.
pub fn kill_self() {
    let pid = std::process::id().to_string();
    // `kill` is a real binary on every target we run on; abort() is the
    // fallback and is equally un-catchable.
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid])
        .status();
    std::process::abort();
}

/// Runs one worker over an already-established connection: reads the
/// epoch-stamped [`JobSpec`] frame and the shipped [`TAG_FRAGMENT`] frame,
/// serves the BSP loop at that epoch, sends the digest, and returns it.
pub fn run_worker_connection<S: SplitStream>(stream: S) -> io::Result<u64> {
    run_worker_connection_with(stream, None, None)
}

/// [`run_worker_connection`] with the full knob set: an OS-level read
/// timeout on the connection (a vanished coordinator then surfaces as an
/// error instead of a worker that waits forever), and an optional
/// [`KillPlan`] for fault-injection drills.
pub fn run_worker_connection_with<S: SplitStream>(
    mut stream: S,
    read_timeout: Option<Duration>,
    kill: Option<KillPlan>,
) -> io::Result<u64> {
    if let Some(timeout) = read_timeout {
        stream.set_read_timeout(Some(timeout))?;
    }
    let (tag, epoch, body) = wire::read_frame_io_epoch(&mut stream)?
        .ok_or_else(|| bad_data("connection closed before the job spec"))?;
    if tag != TAG_JOB {
        return Err(bad_data(format!("expected job frame, got tag {tag:#04x}")));
    }
    let mut reader = WireReader::new(&body);
    let job = JobSpec::decode(&mut reader)
        .and_then(|job| reader.finish().map(|()| job))
        .map_err(|e| bad_data(format!("bad job spec: {e}")))?;
    if job.index >= job.workers {
        return Err(bad_data(format!(
            "fragment index {} out of range for {} workers",
            job.index, job.workers
        )));
    }
    // The fragment arrives on the wire — workers never regenerate the graph.
    let (ftag, fepoch, fbody) = wire::read_frame_io_epoch(&mut stream)?
        .ok_or_else(|| bad_data("connection closed before the fragment"))?;
    if ftag != TAG_FRAGMENT {
        return Err(bad_data(format!(
            "expected fragment frame, got tag {ftag:#04x}"
        )));
    }
    if fepoch != epoch {
        return Err(bad_data(format!(
            "fragment frame at epoch {fepoch}, job at epoch {epoch}"
        )));
    }
    let fragment: Fragment<(), f64> =
        decode_fragment(ftag, &fbody).map_err(|e| bad_data(format!("bad fragment frame: {e}")))?;
    if fragment.id != job.index as usize {
        return Err(bad_data(format!(
            "shipped fragment {} but this worker is index {}",
            fragment.id, job.index
        )));
    }
    let stats = Arc::new(CommStats::new());

    #[allow(clippy::too_many_arguments)]
    fn serve<P, S>(
        program: P,
        query: &P::Query,
        fragment: &Fragment<(), f64>,
        stream: S,
        stats: Arc<CommStats>,
        threads: usize,
        epoch: u32,
        checkpoints: bool,
        kill: Option<KillPlan>,
        to_digest: impl Fn(P::Output) -> u64,
    ) -> io::Result<u64>
    where
        P: PieProgram<VertexData = (), EdgeData = f64>,
        S: SplitStream,
    {
        let transport = FramedStreamWorker::<P::Value>::new(stream, stats)?.with_epoch(epoch);
        let (partial, transport) = match kill {
            None => (
                run_worker_with(&program, query, fragment, &transport, threads, checkpoints),
                transport,
            ),
            Some((kill_at, on_kill)) => {
                let chaos = ChaosWorkerTransport::new(
                    transport,
                    ChaosConfig {
                        kill_at: Some(kill_at),
                        ..Default::default()
                    },
                    on_kill,
                );
                let partial =
                    run_worker_with(&program, query, fragment, &chaos, threads, checkpoints);
                (partial, chaos.into_inner())
            }
        };
        // The worker loop also stops on connection failure; only a clean
        // Finish-terminated run may report a digest as success.
        if let Some(reason) = transport.disconnect_reason() {
            return Err(io::Error::other(format!("run torn down: {reason}")));
        }
        let Some(partial) = partial else {
            return Err(io::Error::other("run torn down before PEval"));
        };
        // Assembling a single partial yields this fragment's view of the
        // answer — the unit the coordinator's verification digests compare.
        let digest = to_digest(program.assemble(vec![partial]));
        transport.send_oob(TAG_DIGEST, &digest)?;
        Ok(digest)
    }

    let threads = job.resolved_threads();
    let checkpoints = job.checkpoints;
    match job.algo.as_str() {
        "sssp" => serve(
            SsspProgram,
            &SsspQuery::new(job.source),
            &fragment,
            stream,
            stats,
            threads,
            epoch,
            checkpoints,
            kill,
            |out| digest_f64_map(&out),
        ),
        "cc" => serve(
            CcProgram,
            &CcQuery,
            &fragment,
            stream,
            stats,
            threads,
            epoch,
            checkpoints,
            kill,
            |out| digest_u64_map(&out),
        ),
        "pagerank" => {
            let program = PageRankProgram::new(job.vertices as usize);
            serve(
                program,
                &PageRankQuery::default(),
                &fragment,
                stream,
                stats,
                threads,
                epoch,
                checkpoints,
                kill,
                |out| digest_f64_map(&out),
            )
        }
        other => Err(bad_data(format!("unknown algorithm {other:?}"))),
    }
}

/// Ships the epoch-stamped handshake down one connection: the [`JobSpec`]
/// (with the per-connection `index` and global `vertices` filled in) followed
/// by the fragment itself as a [`TAG_FRAGMENT`] frame.
fn ship_job<S: SplitStream>(
    stream: &mut S,
    job: &JobSpec,
    index: usize,
    epoch: u32,
    vertices: u64,
    fragment: &Fragment<(), f64>,
) -> io::Result<()> {
    let mut spec = job.clone();
    spec.index = index as u32;
    spec.vertices = vertices;
    wire::write_frame_io_epoch(stream, TAG_JOB, epoch, &spec)?;
    let mut frame = Vec::new();
    encode_fragment_epoch(fragment, epoch, &mut frame);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Runs the coordinator over `streams` (one accepted connection per worker,
/// in fragment order): ships each worker its [`JobSpec`] and fragment, drives
/// the BSP fixpoint, and collects the result digests.
pub fn run_coordinator_connections<S: SplitStream>(
    job: &JobSpec,
    streams: Vec<S>,
) -> io::Result<JobOutcome> {
    run_coordinator_connections_with(job, streams, &EngineConfig::default())
}

/// Like [`run_coordinator_connections`], with an explicit [`EngineConfig`]:
/// in particular [`EngineConfig::read_timeout`] bounds every receive, so a
/// silent worker surfaces as a typed
/// [`grape_core::TransportError::WorkerLost`] instead of a hang.
pub fn run_coordinator_connections_with<S: SplitStream>(
    job: &JobSpec,
    streams: Vec<S>,
    config: &EngineConfig,
) -> io::Result<JobOutcome> {
    run_coordinator_connections_inner(job, streams, config, None)
}

/// Like [`run_coordinator_connections_with`], but the run survives worker
/// loss: `respawn(worker)` must produce a fresh accepted connection to a
/// replacement worker process, which is handed the lost fragment and the last
/// checkpoint at a bumped epoch, after which the in-flight superstep is
/// replayed. Checkpointing is forced on ([`JobSpec::checkpoints`]) — there is
/// no recovery without state to recover.
pub fn run_coordinator_connections_recoverable<S: SplitStream>(
    job: &JobSpec,
    streams: Vec<S>,
    config: &EngineConfig,
    respawn: &mut dyn FnMut(usize) -> io::Result<S>,
) -> io::Result<JobOutcome> {
    let mut job = job.clone();
    job.checkpoints = true;
    run_coordinator_connections_inner(&job, streams, config, Some(respawn))
}

fn run_coordinator_connections_inner<S: SplitStream>(
    job: &JobSpec,
    mut streams: Vec<S>,
    config: &EngineConfig,
    respawn: Option<&mut dyn FnMut(usize) -> io::Result<S>>,
) -> io::Result<JobOutcome> {
    if streams.len() != job.workers as usize {
        return Err(bad_data(format!(
            "{} connections for {} workers",
            streams.len(),
            job.workers
        )));
    }
    let (graph, fragments) = job_fragments(job)?;
    let vertices = graph.num_vertices() as u64;
    for (index, stream) in streams.iter_mut().enumerate() {
        // A connection dead before the handshake is a startup failure, not a
        // recoverable mid-run loss — but phrase it as the loss it is.
        ship_job(stream, job, index, 0, vertices, &fragments[index])
            .map_err(|e| io::Error::other(format!("worker {index} lost during handshake: {e}")))?;
    }
    let stats = Arc::new(CommStats::new());

    #[allow(clippy::too_many_arguments)]
    fn coordinate<P, S>(
        program: P,
        job: &JobSpec,
        fragments: &[Fragment<(), f64>],
        streams: Vec<S>,
        stats: Arc<CommStats>,
        config: &EngineConfig,
        respawn: Option<&mut dyn FnMut(usize) -> io::Result<S>>,
        vertices: u64,
    ) -> io::Result<JobOutcome>
    where
        P: PieProgram<VertexData = (), EdgeData = f64>,
        S: SplitStream,
    {
        let n = streams.len();
        let transport = FramedStreamCoord::<P::Value>::new(streams, stats)?
            .with_read_timeout(config.read_timeout);
        let engine = GrapeEngine::new(program).with_config(*config);
        let stats_out = match respawn {
            None => engine.run_coordinator(fragments, &transport),
            Some(respawn) => {
                // Recovery glue: a fresh connection, the same fragment at the
                // new epoch, and the transport's writer/reader swapped under it.
                let mut recover = |worker: usize, epoch: u32| -> Result<(), String> {
                    let mut stream =
                        respawn(worker).map_err(|e| format!("respawn worker {worker}: {e}"))?;
                    ship_job(
                        &mut stream,
                        job,
                        worker,
                        epoch,
                        vertices,
                        &fragments[worker],
                    )
                    .map_err(|e| format!("re-ship fragment {worker}: {e}"))?;
                    transport
                        .replace_worker(worker, stream, epoch)
                        .map_err(|e| format!("replace worker {worker}: {e}"))
                };
                engine.run_coordinator_recoverable(fragments, &transport, &mut recover)
            }
        }
        .map_err(|e| io::Error::other(e.to_string()))?;
        let mut digests = vec![0u64; n];
        for _ in 0..n {
            let (from, tag, body) = transport
                .recv_oob_blocking()
                .ok_or_else(|| bad_data("a worker closed before sending its digest"))?;
            if tag != TAG_DIGEST {
                return Err(bad_data(format!("expected digest frame, got {tag:#04x}")));
            }
            let mut reader = WireReader::new(&body);
            digests[from] = u64::decode(&mut reader)
                .and_then(|d| reader.finish().map(|()| d))
                .map_err(|e| bad_data(format!("bad digest frame: {e}")))?;
        }
        Ok(JobOutcome {
            stats: stats_out,
            digests,
        })
    }

    match job.algo.as_str() {
        "sssp" => coordinate(
            SsspProgram,
            job,
            &fragments,
            streams,
            stats,
            config,
            respawn,
            vertices,
        ),
        "cc" => coordinate(
            CcProgram, job, &fragments, streams, stats, config, respawn, vertices,
        ),
        "pagerank" => {
            let program = PageRankProgram::new(graph.num_vertices());
            coordinate(
                program, job, &fragments, streams, stats, config, respawn, vertices,
            )
        }
        other => Err(bad_data(format!("unknown algorithm {other:?}"))),
    }
}

/// Runs the identical job fully in-process over the framed *channel*
/// transport: the reference the multi-process path must match bit for bit
/// (digests, supersteps, message counts). Also doubles as an executable
/// example of the public transport API.
pub fn run_local_framed(job: &JobSpec) -> io::Result<JobOutcome> {
    let (graph, fragments) = job_fragments(job)?;
    let stats = Arc::new(CommStats::new());
    let threads = job.resolved_threads();
    let checkpoints = job.checkpoints;

    fn local<P>(
        program: P,
        query: &P::Query,
        fragments: &[Fragment<(), f64>],
        stats: Arc<CommStats>,
        threads: usize,
        checkpoints: bool,
        to_digest: impl Fn(P::Output) -> u64 + Sync,
    ) -> io::Result<JobOutcome>
    where
        P: PieProgram<VertexData = (), EdgeData = f64> + Clone,
    {
        let n = fragments.len();
        let (coord, worker_transports) = framed_channel_pair::<P::Value>(n, stats);
        let program_ref = &program;
        let to_digest = &to_digest;
        std::thread::scope(|scope| {
            let handles: Vec<_> = fragments
                .iter()
                .zip(worker_transports)
                .map(|(fragment, wt)| {
                    scope.spawn(move || {
                        let partial = run_worker_with(
                            program_ref,
                            query,
                            fragment,
                            &wt,
                            threads,
                            checkpoints,
                        )
                        .expect("in-process worker ran PEval");
                        to_digest(program_ref.assemble(vec![partial]))
                    })
                })
                .collect();
            let stats_out = GrapeEngine::new(program.clone())
                .run_coordinator(fragments, &coord)
                .map_err(|e| io::Error::other(e.to_string()))?;
            let digests = handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect();
            Ok(JobOutcome {
                stats: stats_out,
                digests,
            })
        })
    }

    match job.algo.as_str() {
        "sssp" => local(
            SsspProgram,
            &SsspQuery::new(job.source),
            &fragments,
            stats,
            threads,
            checkpoints,
            |out| digest_f64_map(&out),
        ),
        "cc" => local(
            CcProgram,
            &CcQuery,
            &fragments,
            stats,
            threads,
            checkpoints,
            |out| digest_u64_map(&out),
        ),
        "pagerank" => {
            let program = PageRankProgram::new(graph.num_vertices());
            local(
                program,
                &PageRankQuery::default(),
                &fragments,
                stats,
                threads,
                checkpoints,
                |out| digest_f64_map(&out),
            )
        }
        other => Err(bad_data(format!("unknown algorithm {other:?}"))),
    }
}

/// Runs `job` over real TCP sockets with worker threads in this process, one
/// of which is killed — its socket torn down, the SIGKILL event at the
/// transport level — upon receiving command `kill_at`. The coordinator
/// recovers via [`run_coordinator_connections_recoverable`]: fresh
/// connection, re-shipped fragment at a bumped epoch, replayed superstep.
/// This is the deterministic in-process recovery drill the chaos tests and
/// the `recovery_ms` benchmark column share.
pub fn run_local_recoverable_tcp(
    job: &JobSpec,
    kill_worker: usize,
    kill_at: usize,
) -> io::Result<JobOutcome> {
    use std::net::{Shutdown, TcpListener, TcpStream};
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let mut job = job.clone();
    job.checkpoints = true;
    let n = job.workers as usize;
    if kill_worker >= n {
        return Err(bad_data(format!(
            "kill_worker {kill_worker} out of range for {n} workers"
        )));
    }
    std::thread::scope(|scope| {
        // Connect + accept strictly in sequence so accepted-stream order is
        // fragment order — the index mapping must be deterministic.
        let mut streams = Vec::with_capacity(n);
        for index in 0..n {
            let connect = TcpStream::connect(addr)?;
            let (accepted, _) = listener.accept()?;
            let kill: Option<KillPlan> = if index == kill_worker {
                let victim = connect.try_clone()?;
                Some((
                    kill_at,
                    Box::new(move || {
                        let _ = victim.shutdown(Shutdown::Both);
                    }),
                ))
            } else {
                None
            };
            scope.spawn(move || {
                // The killed worker exits with a torn-down connection; the
                // replacement (respawned below) reports in its stead.
                let _ = run_worker_connection_with(connect, None, kill);
            });
            streams.push(accepted);
        }
        let listener = &listener;
        let mut respawn = |_worker: usize| -> io::Result<TcpStream> {
            let connect = TcpStream::connect(addr)?;
            let (accepted, _) = listener.accept()?;
            scope.spawn(move || {
                let _ = run_worker_connection_with(connect, None, None);
            });
            Ok(accepted)
        };
        run_coordinator_connections_recoverable(
            &job,
            streams,
            &EngineConfig::default(),
            &mut respawn,
        )
    })
}

/// Owns a Unix-domain socket path for a listener's lifetime: unlinks a stale
/// socket left behind by a dead process before binding, and removes the
/// socket again on drop — including drops driven by a panic unwinding.
pub struct UdsPathGuard {
    path: std::path::PathBuf,
}

impl UdsPathGuard {
    /// Claims `path`, unlinking a pre-existing *socket* there. Anything else
    /// (a regular file, a directory) is an error — a stale socket is the only
    /// thing this guard may destroy.
    pub fn claim(path: impl Into<std::path::PathBuf>) -> io::Result<Self> {
        let path = path.into();
        match std::fs::symlink_metadata(&path) {
            Ok(meta) => {
                #[cfg(unix)]
                let is_socket = {
                    use std::os::unix::fs::FileTypeExt;
                    meta.file_type().is_socket()
                };
                #[cfg(not(unix))]
                let is_socket = false;
                if is_socket {
                    std::fs::remove_file(&path)?;
                } else {
                    return Err(bad_data(format!(
                        "{} exists and is not a socket; refusing to unlink",
                        path.display()
                    )));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Self { path })
    }

    /// The guarded path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for UdsPathGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_wire_roundtrip() {
        let job = JobSpec {
            algo: "sssp".into(),
            graph: GraphSpec::Road {
                width: 12,
                height: 9,
                seed: 7,
            },
            strategy: "hash".into(),
            workers: 4,
            index: 2,
            source: 0,
            threads: 2,
            vertices: 108,
            checkpoints: true,
        };
        let bytes = job.encode_to_vec();
        let mut reader = WireReader::new(&bytes);
        assert_eq!(JobSpec::decode(&mut reader).unwrap(), job);
        reader.finish().unwrap();
    }

    #[test]
    fn graph_spec_parsing() {
        assert_eq!(
            GraphSpec::parse("road:12x9:7").unwrap(),
            GraphSpec::Road {
                width: 12,
                height: 9,
                seed: 7
            }
        );
        assert_eq!(
            GraphSpec::parse("ba:300:3:11").unwrap(),
            GraphSpec::Ba {
                n: 300,
                m: 3,
                seed: 11
            }
        );
        assert!(GraphSpec::parse("road:12:7").is_err());
        assert!(GraphSpec::parse("lattice:3").is_err());
    }

    #[test]
    fn digests_are_order_independent_and_value_sensitive() {
        let mut a = HashMap::new();
        a.insert(1u64, 1.5f64);
        a.insert(2, 2.5);
        let mut b = HashMap::new();
        b.insert(2u64, 2.5f64);
        b.insert(1, 1.5);
        assert_eq!(digest_f64_map(&a), digest_f64_map(&b));
        b.insert(1, 1.5000001);
        assert_ne!(digest_f64_map(&a), digest_f64_map(&b));
    }

    #[test]
    fn local_framed_runs_agree_across_algorithms() {
        // The in-process framed reference itself must be deterministic and
        // match the plain engine's superstep counts.
        for algo in ["sssp", "cc", "pagerank"] {
            let job = JobSpec {
                algo: algo.into(),
                graph: GraphSpec::Ba {
                    n: 200,
                    m: 3,
                    seed: 5,
                },
                strategy: "hash".into(),
                workers: 3,
                index: 0,
                source: 0,
                threads: 1,
                vertices: 0,
                checkpoints: false,
            };
            let first = run_local_framed(&job).unwrap();
            let second = run_local_framed(&job).unwrap();
            assert_eq!(first.digests, second.digests, "{algo}");
            assert_eq!(first.stats.supersteps, second.stats.supersteps, "{algo}");
            assert_eq!(first.stats.messages, second.stats.messages, "{algo}");
            assert!(first.stats.bytes > 0);
        }
    }

    #[test]
    fn recovered_tcp_runs_match_the_undisturbed_reference() {
        // One in-process drill per algorithm with snapshot support: kill
        // worker 1 at its second command, recover, and pin the digests and
        // superstep count against an undisturbed framed run of the same job.
        for algo in ["sssp", "cc"] {
            let job = JobSpec {
                algo: algo.into(),
                graph: GraphSpec::Road {
                    width: 10,
                    height: 10,
                    seed: 3,
                },
                strategy: "hash".into(),
                workers: 3,
                index: 0,
                source: 0,
                threads: 1,
                vertices: 0,
                checkpoints: true,
            };
            let reference = run_local_framed(&job).unwrap();
            let recovered = run_local_recoverable_tcp(&job, 1, 2).unwrap();
            assert_eq!(recovered.digests, reference.digests, "{algo}");
            assert_eq!(
                recovered.stats.supersteps, reference.stats.supersteps,
                "{algo}"
            );
            assert!(recovered.stats.recoveries >= 1, "{algo}: a kill happened");
        }
    }

    #[test]
    fn uds_path_guard_unlinks_stale_sockets_but_never_files() {
        let dir = std::env::temp_dir();
        let sock = dir.join(format!("grape-guard-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        // A real stale socket is reclaimed...
        drop(std::os::unix::net::UnixListener::bind(&sock).unwrap());
        assert!(sock.exists());
        let guard = UdsPathGuard::claim(&sock).unwrap();
        assert!(!guard.path().exists(), "stale socket unlinked");
        drop(guard);
        // ...but a regular file at the path is refused.
        std::fs::write(&sock, b"precious").unwrap();
        assert!(UdsPathGuard::claim(&sock).is_err());
        std::fs::remove_file(&sock).unwrap();
    }
}
