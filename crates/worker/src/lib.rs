//! # grape-worker
//!
//! Runs GRAPE workers as **separate OS processes**, speaking the framed wire
//! protocol of [`grape_comm::wire`] over TCP or Unix-domain sockets.
//!
//! The division of labour mirrors the paper's deployment: a coordinator
//! process owns the graph, partitions it, and drives the BSP fixpoint
//! ([`grape_core::GrapeEngine::run_coordinator`]); each worker process owns
//! one fragment and runs the *unchanged* PIE program through
//! [`grape_core::run_worker`] — the same function the in-process threaded
//! driver uses, pointed at a socket instead of a channel. Every query class
//! of the paper is served: the traversal/ML classes (`sssp`, `cc`,
//! `pagerank`, `cf`) on weighted graphs and the pattern-matching classes
//! (`sim`, `subiso`, `keyword`, `marketing`) on labeled social graphs.
//!
//! ## Session protocol
//!
//! 1. the worker connects and sends one [`TAG_HELLO`] frame carrying its
//!    `Option<String>` auth token. The coordinator validates it against
//!    [`EngineConfig::auth_token`] and rejects mismatched or missing tokens
//!    with a typed `PermissionDenied` error before any job state is shipped;
//! 2. the coordinator sends one epoch-stamped [`TAG_JOB`] frame — a
//!    [`JobSpec`] naming the algorithm, the partition strategy, the worker
//!    count and this worker's fragment index — followed by one
//!    [`TAG_FRAGMENT`] frame *shipping the fragment itself* (CSR edges,
//!    border tables, payloads). The worker adopts the job frame's epoch as
//!    its run epoch; it never regenerates the graph locally;
//! 3. the worker rebuilds the fragment from the shipped bytes
//!    (bit-identical to a locally cut one) and enters the BSP loop:
//!    `Init` → PEval report → (`IncEval` → report)* → `Finish`;
//! 4. after `Finish` the worker assembles its own partial result, sends a
//!    [`TAG_DIGEST`] frame (an order-independent FNV digest of the encoded
//!    result items), and exits. The coordinator collects one digest per
//!    worker, which the tests compare bit-for-bit against an in-process run
//!    of the same job.
//!
//! ## Fault tolerance
//!
//! With [`JobSpec::checkpoint_every`] = k ≥ 1, every worker snapshots its
//! dense local state onto the first accepted report of each k-superstep
//! window, and [`run_coordinator_connections_recoverable`] survives worker
//! loss: the run epoch is bumped, a replacement process is spawned, handed
//! the lost fragment plus the last checkpoint at the new epoch, and the (at
//! most k) commands sent since that checkpoint are replayed in order. Frames
//! still in flight from the dead connection are fenced by their stale epoch
//! tag. Same-superstep losses are recovered as a batch; each worker has a
//! crash-loop budget with exponential respawn backoff. Recovered runs are
//! bit-identical to undisturbed ones for every query class and every
//! cadence.

#![warn(missing_docs)]

use grape_algo::{
    CcProgram, CcQuery, CfProgram, CfQuery, KeywordProgram, KeywordQuery, MarketingProgram,
    MarketingQuery, PageRankProgram, PageRankQuery, SimProgram, SimQuery, SsspProgram, SsspQuery,
    SubIsoProgram, SubIsoQuery,
};
use grape_comm::wire::{self, Wire, WireError, WireReader, TAG_HELLO};
use grape_comm::CommStats;
use grape_core::chaos::{ChaosConfig, ChaosWorkerTransport};
use grape_core::engine::run_worker_with;
use grape_core::par::ThreadCount;
use grape_core::transport::{
    framed_channel_pair, FramedStreamCoord, FramedStreamWorker, SplitStream,
};
use grape_core::{
    decode_fragment, encode_fragment_epoch, EngineConfig, GrapeEngine, PieProgram, RunStats,
    TAG_FRAGMENT,
};
use grape_graph::generators::{
    barabasi_albert, labeled_social, road_network, RoadNetworkConfig, SocialGraphConfig,
};
use grape_graph::labels::{LabeledGraph, LabeledVertex};
use grape_graph::WeightedGraph;
use grape_partition::{build_fragments, BuiltinStrategy, Fragment};
use std::io;
use std::sync::Arc;
use std::time::Duration;

pub mod service;

pub use service::{
    Endpoint, GrapeService, IncrementalSeed, QueryHandle, QueryOutcome, ServiceHandle,
    ServiceOptions, Session, SessionConfig, SessionGraph, SessionUpdate, UpdateReceipt, UpdateSpec,
};

/// Frame tag of the coordinator→worker [`JobSpec`] handshake.
pub const TAG_JOB: u8 = 0x20;
/// Frame tag of the worker→coordinator result digest.
pub const TAG_DIGEST: u8 = 0x21;

/// A deterministic graph recipe both endpoints can rebuild independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSpec {
    /// `road_network(width × height, seed)` with default lake/shortcut
    /// probabilities.
    Road {
        /// Grid width.
        width: u32,
        /// Grid height.
        height: u32,
        /// Generator seed.
        seed: u32,
    },
    /// `barabasi_albert(n, m, seed)`.
    Ba {
        /// Number of vertices.
        n: u32,
        /// Edges per new vertex.
        m: u32,
        /// Generator seed.
        seed: u32,
    },
    /// `labeled_social(persons, products, seed)` — the labeled property
    /// graph the pattern-matching classes (`sim`, `subiso`, `keyword`,
    /// `marketing`) run on.
    Social {
        /// Number of `person` vertices.
        persons: u32,
        /// Number of `product` vertices.
        products: u32,
        /// Generator seed.
        seed: u32,
    },
}

impl Wire for GraphSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            GraphSpec::Road {
                width,
                height,
                seed,
            } => {
                0u8.encode(out);
                width.encode(out);
                height.encode(out);
                seed.encode(out);
            }
            GraphSpec::Ba { n, m, seed } => {
                1u8.encode(out);
                n.encode(out);
                m.encode(out);
                seed.encode(out);
            }
            GraphSpec::Social {
                persons,
                products,
                seed,
            } => {
                2u8.encode(out);
                persons.encode(out);
                products.encode(out);
                seed.encode(out);
            }
        }
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        match reader.u8()? {
            0 => Ok(GraphSpec::Road {
                width: reader.u32()?,
                height: reader.u32()?,
                seed: reader.u32()?,
            }),
            1 => Ok(GraphSpec::Ba {
                n: reader.u32()?,
                m: reader.u32()?,
                seed: reader.u32()?,
            }),
            2 => Ok(GraphSpec::Social {
                persons: reader.u32()?,
                products: reader.u32()?,
                seed: reader.u32()?,
            }),
            other => Err(WireError::BadTag { found: other }),
        }
    }
}

impl GraphSpec {
    /// Parses `road:WxH:SEED`, `ba:N:M:SEED` or `social:P:R:SEED`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let parts: Vec<&str> = text.split(':').collect();
        let num = |s: &str| -> Result<u32, String> {
            s.parse::<u32>().map_err(|_| format!("bad number {s:?}"))
        };
        match parts.as_slice() {
            ["road", dims, seed] => {
                let (w, h) = dims
                    .split_once('x')
                    .ok_or_else(|| format!("bad dimensions {dims:?}, expected WxH"))?;
                Ok(GraphSpec::Road {
                    width: num(w)?,
                    height: num(h)?,
                    seed: num(seed)?,
                })
            }
            ["ba", n, m, seed] => Ok(GraphSpec::Ba {
                n: num(n)?,
                m: num(m)?,
                seed: num(seed)?,
            }),
            ["social", persons, products, seed] => Ok(GraphSpec::Social {
                persons: num(persons)?,
                products: num(products)?,
                seed: num(seed)?,
            }),
            _ => Err(format!(
                "bad graph spec {text:?}; expected road:WxH:SEED, ba:N:M:SEED or social:P:R:SEED"
            )),
        }
    }
}

/// Everything a worker process needs to participate in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Algorithm name: `sssp`, `cc`, `pagerank`, `cf` (weighted graphs) or
    /// `sim`, `subiso`, `keyword`, `marketing` (labeled social graphs).
    pub algo: String,
    /// The graph both endpoints rebuild.
    pub graph: GraphSpec,
    /// Partition strategy name (a [`BuiltinStrategy::name`]).
    pub strategy: String,
    /// Total number of workers / fragments.
    pub workers: u32,
    /// This worker's fragment index (set per connection by the coordinator).
    pub index: u32,
    /// Query anchor vertex: the SSSP source; the promoted product for
    /// `marketing` (0 = the graph's first product). Ignored elsewhere.
    pub source: u64,
    /// Intra-worker threads for the PIE hot loops (0 = auto: physical cores
    /// divided by the worker count).
    pub threads: u32,
    /// Global vertex count, filled in by the coordinator when it ships the
    /// job (workers no longer build the graph, and PageRank needs |V|).
    pub vertices: u64,
    /// Checkpoint cadence: each worker snapshots its dense local state onto
    /// the first accepted report of every `k`-superstep window. 0 disables
    /// checkpoints entirely; the recoverable entry points force at least 1.
    pub checkpoint_every: u32,
    /// Auth token the coordinator stamps into the shipped job spec. The
    /// worker presented its own copy in the [`TAG_HELLO`] frame before this
    /// spec was sent; mismatches never get this far.
    pub token: Option<String>,
}

impl JobSpec {
    /// The resolved intra-worker thread count this spec asks for.
    pub fn resolved_threads(&self) -> usize {
        let count = if self.threads == 0 {
            ThreadCount::Auto
        } else {
            ThreadCount::Fixed(self.threads)
        };
        count.resolve(self.workers as usize, false)
    }
}

impl Wire for JobSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.algo.encode(out);
        self.graph.encode(out);
        self.strategy.encode(out);
        self.workers.encode(out);
        self.index.encode(out);
        self.source.encode(out);
        self.threads.encode(out);
        self.vertices.encode(out);
        self.checkpoint_every.encode(out);
        self.token.encode(out);
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(JobSpec {
            algo: String::decode(reader)?,
            graph: GraphSpec::decode(reader)?,
            strategy: String::decode(reader)?,
            workers: reader.u32()?,
            index: reader.u32()?,
            source: reader.u64()?,
            threads: reader.u32()?,
            vertices: reader.u64()?,
            checkpoint_every: reader.u32()?,
            token: Option::<String>::decode(reader)?,
        })
    }
}

/// Looks up a partition strategy by its [`BuiltinStrategy::name`].
pub fn strategy_by_name(name: &str) -> Option<BuiltinStrategy> {
    BuiltinStrategy::all()
        .iter()
        .copied()
        .find(|s| s.name() == name)
}

pub(crate) fn bad_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn denied(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::PermissionDenied, message.into())
}

// ---------------------------------------------------------------------------
// Result digests
// ---------------------------------------------------------------------------

// The order-independent FNV digests moved next to the query/result types in
// `grape_algo::query` (the service path digests on both ends of the wire);
// re-exported here so existing `grape_worker::digest_*` callers keep working.
pub use grape_algo::{
    digest_cf, digest_embeddings, digest_f64_map, digest_keyword, digest_prospects, digest_sim,
    digest_u64_map,
};

// ---------------------------------------------------------------------------
// Canonical queries
// ---------------------------------------------------------------------------
//
// Workers and the coordinator derive the query from the JobSpec alone, so
// both endpoints must construct *exactly* the same query object. These
// helpers delegate to the canonical [`grape_algo::Query`] constructors — the
// service path ships those same values over the wire, so one definition
// serves both the one-shot job protocol and resident sessions.

/// Whether `algo` runs on a labeled social graph (`true`) or a weighted
/// graph (`false`); `None` for unknown algorithms.
fn algo_is_labeled(algo: &str) -> Option<bool> {
    match algo {
        "sssp" | "cc" | "pagerank" | "cf" => Some(false),
        "sim" | "subiso" | "keyword" | "marketing" => Some(true),
        _ => None,
    }
}

/// The chain pattern of Fig. 4: person →`follows` person →`recommends`
/// product. Used by `sim`.
fn sim_query() -> SimQuery {
    grape_algo::Query::canonical_sim()
        .to_sim()
        .expect("canonical_sim builds a Sim query")
        .expect("the canonical chain pattern is valid")
}

/// A radius-1 star for `subiso`: with radius ≥ 2 the protocol replicates
/// whole 2-hop neighbourhoods of a hubby social graph per border vertex.
fn subiso_query() -> SubIsoQuery {
    grape_algo::Query::canonical_subiso()
        .to_subiso()
        .expect("canonical_subiso builds a SubIso query")
}

fn keyword_query() -> KeywordQuery {
    grape_algo::Query::canonical_keyword()
        .to_keyword()
        .expect("canonical_keyword builds a Keyword query")
}

/// The promoted product for `marketing`: [`JobSpec::source`] when set, else
/// the graph's first product vertex (id = number of persons).
fn marketing_query(job: &JobSpec) -> io::Result<MarketingQuery> {
    let product = match (job.source, &job.graph) {
        (0, GraphSpec::Social { persons, .. }) => *persons as u64,
        (0, _) => return Err(bad_data("marketing needs a social graph or --source")),
        (source, _) => source,
    };
    Ok(grape_algo::Query::marketing(product)
        .to_marketing()
        .expect("marketing builds a Marketing query"))
}

fn cf_query() -> CfQuery {
    grape_algo::Query::cf()
        .to_cf()
        .expect("cf builds a Cf query")
}

/// CF's user/item split on a generic weighted graph: the lower half of the
/// id space plays the users.
pub(crate) fn cf_num_users(vertices: u64) -> usize {
    ((vertices / 2) as usize).max(1)
}

// ---------------------------------------------------------------------------
// Graph building
// ---------------------------------------------------------------------------

/// The outcome of one coordinated run: the coordinator's statistics plus one
/// result digest per worker (in worker order).
#[derive(Debug)]
pub struct JobOutcome {
    /// Run statistics as reported by the coordinator (supersteps, messages,
    /// actual wire bytes, timings).
    pub stats: RunStats,
    /// Per-worker digests of the fragments' assembled partial results.
    pub digests: Vec<u64>,
}

/// A job's graph and fragments, in whichever of the two payload families
/// the algorithm runs on.
enum JobGraph {
    /// Unit vertices, `f64` edge weights: `sssp`, `cc`, `pagerank`, `cf`.
    Weighted(WeightedGraph, Vec<Fragment<(), f64>>),
    /// Labeled vertices, relation-typed edges: `sim`, `subiso`, `keyword`,
    /// `marketing`.
    Labeled(LabeledGraph, Vec<Fragment<LabeledVertex, String>>),
}

/// Builds `job`'s graph and its fragments exactly as both endpoints must,
/// validating that the algorithm and the graph family agree.
fn job_fragments(job: &JobSpec) -> io::Result<JobGraph> {
    let labeled = algo_is_labeled(&job.algo)
        .ok_or_else(|| bad_data(format!("unknown algorithm {:?}", job.algo)))?;
    let strategy = strategy_by_name(&job.strategy)
        .ok_or_else(|| bad_data(format!("unknown strategy {:?}", job.strategy)))?;
    match (&job.graph, labeled) {
        (
            GraphSpec::Social {
                persons,
                products,
                seed,
            },
            true,
        ) => {
            let graph = labeled_social(
                SocialGraphConfig {
                    num_persons: *persons as usize,
                    num_products: *products as usize,
                    ..Default::default()
                },
                *seed as u64,
            )
            .map_err(|e| bad_data(format!("bad social spec: {e}")))?;
            let assignment = strategy.partition(&graph, job.workers as usize);
            let fragments = build_fragments(&graph, &assignment);
            Ok(JobGraph::Labeled(graph, fragments))
        }
        (GraphSpec::Social { .. }, false) => Err(bad_data(format!(
            "algorithm {:?} needs a weighted graph (road/ba), not a social graph",
            job.algo
        ))),
        (_, true) => Err(bad_data(format!(
            "algorithm {:?} needs a labeled social graph (social:P:R:SEED)",
            job.algo
        ))),
        (spec, false) => {
            let graph = match spec {
                GraphSpec::Road {
                    width,
                    height,
                    seed,
                } => road_network(
                    RoadNetworkConfig {
                        width: *width as usize,
                        height: *height as usize,
                        ..Default::default()
                    },
                    *seed as u64,
                )
                .map_err(|e| bad_data(format!("bad road spec: {e}")))?,
                GraphSpec::Ba { n, m, seed } => {
                    barabasi_albert(*n as usize, *m as usize, *seed as u64)
                        .map_err(|e| bad_data(format!("bad BA spec: {e}")))?
                }
                GraphSpec::Social { .. } => unreachable!("matched above"),
            };
            let assignment = strategy.partition(&graph, job.workers as usize);
            let fragments = build_fragments(&graph, &assignment);
            Ok(JobGraph::Weighted(graph, fragments))
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// A worker's kill schedule: SIGKILL-equivalent death upon *receiving* the
/// command with this index (0 = the Init handshake), plus the action that
/// performs the death — the `grape-worker` binary SIGKILLs its own process;
/// in-process harnesses shut the socket down, which is the same event at
/// the transport level.
pub type KillPlan = (usize, Box<dyn FnMut() + Send>);

/// SIGKILLs the calling process: the real thing for multi-process chaos
/// drills — no unwinding, no flushes, no goodbye frame.
pub fn kill_self() {
    let pid = std::process::id().to_string();
    // `kill` is a real binary on every target we run on; abort() is the
    // fallback and is equally un-catchable.
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid])
        .status();
    std::process::abort();
}

/// The full worker-side knob set for [`run_worker_connection_opts`].
#[derive(Default)]
pub struct WorkerOptions {
    /// OS-level read timeout on the connection: a vanished coordinator then
    /// surfaces as an error instead of a worker that waits forever.
    pub read_timeout: Option<Duration>,
    /// Auth token presented in the [`TAG_HELLO`] frame.
    pub token: Option<String>,
    /// Fault-injection schedule (kills, duplicated / muted / delayed
    /// frames); [`ChaosConfig::default`] injects nothing.
    pub chaos: ChaosConfig,
    /// Action performed when [`ChaosConfig::kill_at`] fires.
    pub on_kill: Option<Box<dyn FnMut() + Send>>,
}

/// Runs one worker over an already-established connection: sends the
/// [`TAG_HELLO`] greeting, reads the epoch-stamped [`JobSpec`] frame and the
/// shipped [`TAG_FRAGMENT`] frame, serves the BSP loop at that epoch, sends
/// the digest, and returns it.
#[deprecated(
    since = "0.9.0",
    note = "use `run_worker_connection_opts` (one-shot jobs) or a resident \
            `service::GrapeService` daemon instead"
)]
pub fn run_worker_connection<S: SplitStream>(stream: S) -> io::Result<u64> {
    run_worker_connection_opts(stream, WorkerOptions::default())
}

/// [`run_worker_connection`] with a read timeout and an optional
/// [`KillPlan`] — the knobs the recovery drills use.
pub fn run_worker_connection_with<S: SplitStream>(
    stream: S,
    read_timeout: Option<Duration>,
    kill: Option<KillPlan>,
) -> io::Result<u64> {
    let mut options = WorkerOptions {
        read_timeout,
        ..Default::default()
    };
    if let Some((kill_at, on_kill)) = kill {
        options.chaos.kill_at = Some(kill_at);
        options.on_kill = Some(on_kill);
    }
    run_worker_connection_opts(stream, options)
}

/// [`run_worker_connection`] with the full [`WorkerOptions`] knob set.
pub fn run_worker_connection_opts<S: SplitStream>(
    mut stream: S,
    options: WorkerOptions,
) -> io::Result<u64> {
    let WorkerOptions {
        read_timeout,
        token,
        chaos,
        on_kill,
    } = options;
    if let Some(timeout) = read_timeout {
        stream.set_read_timeout(Some(timeout))?;
    }
    // Present credentials before anything else: the coordinator will not
    // ship a job (or even a byte) until the greeting passes validation.
    wire::write_frame_io_epoch(&mut stream, TAG_HELLO, 0, &token)?;
    stream.flush()?;
    let (tag, epoch, body) = wire::read_frame_io_epoch(&mut stream)?
        .ok_or_else(|| bad_data("connection closed before the job spec"))?;
    if tag != TAG_JOB {
        return Err(bad_data(format!("expected job frame, got tag {tag:#04x}")));
    }
    let mut reader = WireReader::new(&body);
    let job = JobSpec::decode(&mut reader)
        .and_then(|job| reader.finish().map(|()| job))
        .map_err(|e| bad_data(format!("bad job spec: {e}")))?;
    if job.index >= job.workers {
        return Err(bad_data(format!(
            "fragment index {} out of range for {} workers",
            job.index, job.workers
        )));
    }
    // The fragment arrives on the wire — workers never regenerate the graph.
    let (ftag, fepoch, fbody) = wire::read_frame_io_epoch(&mut stream)?
        .ok_or_else(|| bad_data("connection closed before the fragment"))?;
    if ftag != TAG_FRAGMENT {
        return Err(bad_data(format!(
            "expected fragment frame, got tag {ftag:#04x}"
        )));
    }
    if fepoch != epoch {
        return Err(bad_data(format!(
            "fragment frame at epoch {fepoch}, job at epoch {epoch}"
        )));
    }

    fn shipped_fragment<V, E>(tag: u8, body: &[u8], index: u32) -> io::Result<Fragment<V, E>>
    where
        V: Wire + Clone + Default,
        E: Wire + Clone,
    {
        let fragment: Fragment<V, E> =
            decode_fragment(tag, body).map_err(|e| bad_data(format!("bad fragment frame: {e}")))?;
        if fragment.id != index as usize {
            return Err(bad_data(format!(
                "shipped fragment {} but this worker is index {}",
                fragment.id, index
            )));
        }
        Ok(fragment)
    }

    let stats = Arc::new(CommStats::new());
    let threads = job.resolved_threads();
    let ck = job.checkpoint_every as usize;
    match job.algo.as_str() {
        "sssp" => {
            let fragment = shipped_fragment::<(), f64>(ftag, &fbody, job.index)?;
            serve(
                SsspProgram,
                &SsspQuery::new(job.source),
                &fragment,
                stream,
                stats,
                threads,
                epoch,
                ck,
                chaos,
                on_kill,
                |out| digest_f64_map(&out),
            )
        }
        "cc" => {
            let fragment = shipped_fragment::<(), f64>(ftag, &fbody, job.index)?;
            serve(
                CcProgram,
                &CcQuery,
                &fragment,
                stream,
                stats,
                threads,
                epoch,
                ck,
                chaos,
                on_kill,
                |out| digest_u64_map(&out),
            )
        }
        "pagerank" => {
            let fragment = shipped_fragment::<(), f64>(ftag, &fbody, job.index)?;
            serve(
                PageRankProgram::new(job.vertices as usize),
                &PageRankQuery::default(),
                &fragment,
                stream,
                stats,
                threads,
                epoch,
                ck,
                chaos,
                on_kill,
                |out| digest_f64_map(&out),
            )
        }
        "cf" => {
            let fragment = shipped_fragment::<(), f64>(ftag, &fbody, job.index)?;
            serve(
                CfProgram::new(cf_num_users(job.vertices)),
                &cf_query(),
                &fragment,
                stream,
                stats,
                threads,
                epoch,
                ck,
                chaos,
                on_kill,
                |out| digest_cf(&out),
            )
        }
        "sim" => {
            let fragment = shipped_fragment::<LabeledVertex, String>(ftag, &fbody, job.index)?;
            serve(
                SimProgram,
                &sim_query(),
                &fragment,
                stream,
                stats,
                threads,
                epoch,
                ck,
                chaos,
                on_kill,
                |out| digest_sim(&out),
            )
        }
        "subiso" => {
            let fragment = shipped_fragment::<LabeledVertex, String>(ftag, &fbody, job.index)?;
            serve(
                SubIsoProgram,
                &subiso_query(),
                &fragment,
                stream,
                stats,
                threads,
                epoch,
                ck,
                chaos,
                on_kill,
                |out| digest_embeddings(&out),
            )
        }
        "keyword" => {
            let fragment = shipped_fragment::<LabeledVertex, String>(ftag, &fbody, job.index)?;
            serve(
                KeywordProgram,
                &keyword_query(),
                &fragment,
                stream,
                stats,
                threads,
                epoch,
                ck,
                chaos,
                on_kill,
                |out| digest_keyword(&out),
            )
        }
        "marketing" => {
            let fragment = shipped_fragment::<LabeledVertex, String>(ftag, &fbody, job.index)?;
            serve(
                MarketingProgram,
                &marketing_query(&job)?,
                &fragment,
                stream,
                stats,
                threads,
                epoch,
                ck,
                chaos,
                on_kill,
                |out| digest_prospects(&out),
            )
        }
        other => Err(bad_data(format!("unknown algorithm {other:?}"))),
    }
}

/// One worker's BSP session over an established, authenticated connection —
/// generic over the program, so all eight query classes share this path.
#[allow(clippy::too_many_arguments)]
fn serve<P, S>(
    program: P,
    query: &P::Query,
    fragment: &Fragment<P::VertexData, P::EdgeData>,
    stream: S,
    stats: Arc<CommStats>,
    threads: usize,
    epoch: u32,
    checkpoint_every: usize,
    chaos: ChaosConfig,
    on_kill: Option<Box<dyn FnMut() + Send>>,
    to_digest: impl Fn(P::Output) -> u64,
) -> io::Result<u64>
where
    P: PieProgram,
    S: SplitStream,
{
    let transport = FramedStreamWorker::<P::Value>::new(stream, stats)?.with_epoch(epoch);
    let chaos_active = chaos.kill_at.is_some()
        || chaos.mute_per_mille > 0
        || chaos.duplicate_per_mille > 0
        || chaos.delay_per_mille > 0;
    let (partial, transport) = if chaos_active {
        let on_kill = on_kill.unwrap_or_else(|| Box::new(|| {}));
        let wrapped = ChaosWorkerTransport::new(transport, chaos, on_kill);
        let partial = run_worker_with(
            &program,
            query,
            fragment,
            &wrapped,
            threads,
            checkpoint_every,
        );
        (partial, wrapped.into_inner())
    } else {
        (
            run_worker_with(
                &program,
                query,
                fragment,
                &transport,
                threads,
                checkpoint_every,
            ),
            transport,
        )
    };
    // The worker loop also stops on connection failure; only a clean
    // Finish-terminated run may report a digest as success.
    if let Some(reason) = transport.disconnect_reason() {
        return Err(io::Error::other(format!("run torn down: {reason}")));
    }
    let Some(partial) = partial else {
        return Err(io::Error::other("run torn down before PEval"));
    };
    // Assembling a single partial yields this fragment's view of the
    // answer — the unit the coordinator's verification digests compare.
    let digest = to_digest(program.assemble(vec![partial]));
    transport.send_oob(TAG_DIGEST, &digest)?;
    Ok(digest)
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// Reads and validates a worker's [`TAG_HELLO`] greeting. `expected = None`
/// accepts any greeting; otherwise the presented token must match, and a
/// mismatched or missing token is a typed `PermissionDenied` error.
pub(crate) fn expect_hello<S: SplitStream>(
    stream: &mut S,
    expected: Option<&str>,
    index: usize,
    timeout: Option<Duration>,
) -> io::Result<()> {
    stream.set_read_timeout(timeout)?;
    let frame = wire::read_frame_io_epoch(stream);
    stream.set_read_timeout(None)?;
    let (tag, _epoch, body) = frame
        .map_err(|e| {
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) {
                io::Error::other(format!(
                    "worker {index} lost during handshake: no hello frame within the read timeout"
                ))
            } else {
                io::Error::other(format!("worker {index} lost during handshake: {e}"))
            }
        })?
        .ok_or_else(|| {
            io::Error::other(format!(
                "worker {index} lost during handshake: connection closed before the hello frame"
            ))
        })?;
    if tag != TAG_HELLO {
        return Err(bad_data(format!(
            "worker {index}: expected hello frame, got tag {tag:#04x}"
        )));
    }
    let mut reader = WireReader::new(&body);
    let token = Option::<String>::decode(&mut reader)
        .and_then(|t| reader.finish().map(|()| t))
        .map_err(|e| bad_data(format!("worker {index}: bad hello frame: {e}")))?;
    match (expected, token) {
        (None, _) => Ok(()),
        (Some(want), Some(got)) if got == want => Ok(()),
        (Some(_), Some(_)) => Err(denied(format!(
            "worker {index} presented a mismatched auth token"
        ))),
        (Some(_), None) => Err(denied(format!(
            "worker {index} presented no auth token, but this coordinator requires one"
        ))),
    }
}

/// Ships the epoch-stamped handshake down one connection: the [`JobSpec`]
/// (with the per-connection `index` and global `vertices` filled in) followed
/// by the fragment itself as a [`TAG_FRAGMENT`] frame.
fn ship_job<S, V, E>(
    stream: &mut S,
    job: &JobSpec,
    index: usize,
    epoch: u32,
    vertices: u64,
    fragment: &Fragment<V, E>,
) -> io::Result<()>
where
    S: SplitStream,
    V: Wire + Clone,
    E: Wire + Clone,
{
    let mut spec = job.clone();
    spec.index = index as u32;
    spec.vertices = vertices;
    wire::write_frame_io_epoch(stream, TAG_JOB, epoch, &spec)?;
    let mut frame = Vec::new();
    encode_fragment_epoch(fragment, epoch, &mut frame);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Runs the coordinator over `streams` (one accepted connection per worker,
/// in fragment order): authenticates each worker's hello, ships each its
/// [`JobSpec`] and fragment, drives the BSP fixpoint, and collects the
/// result digests.
#[deprecated(
    since = "0.9.0",
    note = "use `run_coordinator_connections_with` (one-shot jobs) or a \
            resident `service::Session` instead"
)]
pub fn run_coordinator_connections<S: SplitStream>(
    job: &JobSpec,
    streams: Vec<S>,
) -> io::Result<JobOutcome> {
    run_coordinator_connections_with(job, streams, &EngineConfig::default())
}

/// Like [`run_coordinator_connections`], with an explicit [`EngineConfig`]:
/// [`EngineConfig::read_timeout`] bounds every receive (a silent worker
/// surfaces as a typed [`grape_core::TransportError::WorkerLost`] instead of
/// a hang) and [`EngineConfig::auth_token`] is enforced against every
/// worker's hello frame.
pub fn run_coordinator_connections_with<S: SplitStream>(
    job: &JobSpec,
    streams: Vec<S>,
    config: &EngineConfig,
) -> io::Result<JobOutcome> {
    run_coordinator_connections_inner(job, streams, config, None)
}

/// Like [`run_coordinator_connections_with`], but the run survives worker
/// loss — including several workers in the same superstep, and replacements
/// that die again mid-replay: `respawn(worker)` must produce a fresh
/// accepted connection to a replacement worker process, which is handed the
/// lost fragment and the last checkpoint at a bumped epoch, after which the
/// commands since that checkpoint are replayed. A [`JobSpec::checkpoint_every`]
/// of 0 is forced to 1 — recovery without snapshots would mean replaying the
/// whole run's lineage on every loss.
pub fn run_coordinator_connections_recoverable<S: SplitStream>(
    job: &JobSpec,
    streams: Vec<S>,
    config: &EngineConfig,
    respawn: &mut dyn FnMut(usize) -> io::Result<S>,
) -> io::Result<JobOutcome> {
    let mut job = job.clone();
    if job.checkpoint_every == 0 {
        job.checkpoint_every = 1;
    }
    run_coordinator_connections_inner(&job, streams, config, Some(respawn))
}

fn run_coordinator_connections_inner<S: SplitStream>(
    job: &JobSpec,
    streams: Vec<S>,
    config: &EngineConfig,
    respawn: Option<&mut dyn FnMut(usize) -> io::Result<S>>,
) -> io::Result<JobOutcome> {
    if streams.len() != job.workers as usize {
        return Err(bad_data(format!(
            "{} connections for {} workers",
            streams.len(),
            job.workers
        )));
    }
    let stats = Arc::new(CommStats::new());
    match job_fragments(job)? {
        JobGraph::Weighted(graph, fragments) => {
            let vertices = graph.num_vertices() as u64;
            match job.algo.as_str() {
                "sssp" => coordinate(
                    SsspProgram,
                    job,
                    &fragments,
                    streams,
                    stats,
                    config,
                    respawn,
                    vertices,
                ),
                "cc" => coordinate(
                    CcProgram, job, &fragments, streams, stats, config, respawn, vertices,
                ),
                "pagerank" => coordinate(
                    PageRankProgram::new(graph.num_vertices()),
                    job,
                    &fragments,
                    streams,
                    stats,
                    config,
                    respawn,
                    vertices,
                ),
                "cf" => coordinate(
                    CfProgram::new(cf_num_users(vertices)),
                    job,
                    &fragments,
                    streams,
                    stats,
                    config,
                    respawn,
                    vertices,
                ),
                other => unreachable!("job_fragments admitted weighted algo {other:?}"),
            }
        }
        JobGraph::Labeled(graph, fragments) => {
            let vertices = graph.num_vertices() as u64;
            match job.algo.as_str() {
                "sim" => coordinate(
                    SimProgram, job, &fragments, streams, stats, config, respawn, vertices,
                ),
                "subiso" => coordinate(
                    SubIsoProgram,
                    job,
                    &fragments,
                    streams,
                    stats,
                    config,
                    respawn,
                    vertices,
                ),
                "keyword" => coordinate(
                    KeywordProgram,
                    job,
                    &fragments,
                    streams,
                    stats,
                    config,
                    respawn,
                    vertices,
                ),
                "marketing" => coordinate(
                    MarketingProgram,
                    job,
                    &fragments,
                    streams,
                    stats,
                    config,
                    respawn,
                    vertices,
                ),
                other => unreachable!("job_fragments admitted labeled algo {other:?}"),
            }
        }
    }
}

/// The coordinator's session over authenticated connections — generic over
/// the program, so all eight query classes share this path.
#[allow(clippy::too_many_arguments)]
fn coordinate<P, S>(
    program: P,
    job: &JobSpec,
    fragments: &[Fragment<P::VertexData, P::EdgeData>],
    mut streams: Vec<S>,
    stats: Arc<CommStats>,
    config: &EngineConfig,
    respawn: Option<&mut dyn FnMut(usize) -> io::Result<S>>,
    vertices: u64,
) -> io::Result<JobOutcome>
where
    P: PieProgram,
    P::VertexData: Wire,
    P::EdgeData: Wire,
    S: SplitStream,
{
    let n = streams.len();
    // Authenticate, then ship. The shipped spec carries the coordinator's
    // token so the job-spec frame records which credential the session was
    // established under.
    let mut job = job.clone();
    job.token = config.auth_token.clone();
    for (index, stream) in streams.iter_mut().enumerate() {
        expect_hello(
            stream,
            config.auth_token.as_deref(),
            index,
            config.read_timeout,
        )?;
        // A connection dead before the handshake completes is a startup
        // failure, not a recoverable mid-run loss.
        ship_job(stream, &job, index, 0, vertices, &fragments[index])
            .map_err(|e| io::Error::other(format!("worker {index} lost during handshake: {e}")))?;
    }
    let transport =
        FramedStreamCoord::<P::Value>::new(streams, stats)?.with_read_timeout(config.read_timeout);
    let engine = GrapeEngine::new(program).with_config(config.clone());
    let stats_out = match respawn {
        None => engine.run_coordinator(fragments, &transport),
        Some(respawn) => {
            // Recovery glue: a fresh authenticated connection, the same
            // fragment at the new epoch, and the transport's writer/reader
            // swapped under it.
            let mut recover = |worker: usize, epoch: u32| -> Result<(), String> {
                let mut stream =
                    respawn(worker).map_err(|e| format!("respawn worker {worker}: {e}"))?;
                expect_hello(
                    &mut stream,
                    config.auth_token.as_deref(),
                    worker,
                    config.read_timeout,
                )
                .map_err(|e| format!("replacement handshake {worker}: {e}"))?;
                ship_job(
                    &mut stream,
                    &job,
                    worker,
                    epoch,
                    vertices,
                    &fragments[worker],
                )
                .map_err(|e| format!("re-ship fragment {worker}: {e}"))?;
                transport
                    .replace_worker(worker, stream, epoch)
                    .map_err(|e| format!("replace worker {worker}: {e}"))
            };
            engine.run_coordinator_recoverable(fragments, &transport, &mut recover)
        }
    }
    .map_err(|e| io::Error::other(e.to_string()))?;
    let mut digests = vec![0u64; n];
    for _ in 0..n {
        let (from, tag, body) = transport
            .recv_oob_blocking()
            .ok_or_else(|| bad_data("a worker closed before sending its digest"))?;
        if tag != TAG_DIGEST {
            return Err(bad_data(format!("expected digest frame, got {tag:#04x}")));
        }
        let mut reader = WireReader::new(&body);
        digests[from] = u64::decode(&mut reader)
            .and_then(|d| reader.finish().map(|()| d))
            .map_err(|e| bad_data(format!("bad digest frame: {e}")))?;
    }
    Ok(JobOutcome {
        stats: stats_out,
        digests,
    })
}

// ---------------------------------------------------------------------------
// In-process reference + recovery drills
// ---------------------------------------------------------------------------

/// Runs the identical job fully in-process over the framed *channel*
/// transport: the reference the multi-process path must match bit for bit
/// (digests, supersteps, message counts). Also doubles as an executable
/// example of the public transport API.
pub fn run_local_framed(job: &JobSpec) -> io::Result<JobOutcome> {
    let stats = Arc::new(CommStats::new());
    let threads = job.resolved_threads();
    let ck = job.checkpoint_every as usize;

    fn local<P>(
        program: P,
        query: &P::Query,
        fragments: &[Fragment<P::VertexData, P::EdgeData>],
        stats: Arc<CommStats>,
        threads: usize,
        checkpoint_every: usize,
        to_digest: impl Fn(P::Output) -> u64 + Sync,
    ) -> io::Result<JobOutcome>
    where
        P: PieProgram + Clone,
    {
        let n = fragments.len();
        let (coord, worker_transports) = framed_channel_pair::<P::Value>(n, stats);
        let program_ref = &program;
        let to_digest = &to_digest;
        std::thread::scope(|scope| {
            let handles: Vec<_> = fragments
                .iter()
                .zip(worker_transports)
                .map(|(fragment, wt)| {
                    scope.spawn(move || {
                        let partial = run_worker_with(
                            program_ref,
                            query,
                            fragment,
                            &wt,
                            threads,
                            checkpoint_every,
                        )
                        .expect("in-process worker ran PEval");
                        to_digest(program_ref.assemble(vec![partial]))
                    })
                })
                .collect();
            let stats_out = GrapeEngine::new(program.clone())
                .run_coordinator(fragments, &coord)
                .map_err(|e| io::Error::other(e.to_string()))?;
            let digests = handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect();
            Ok(JobOutcome {
                stats: stats_out,
                digests,
            })
        })
    }

    match job_fragments(job)? {
        JobGraph::Weighted(graph, fragments) => match job.algo.as_str() {
            "sssp" => local(
                SsspProgram,
                &SsspQuery::new(job.source),
                &fragments,
                stats,
                threads,
                ck,
                |out| digest_f64_map(&out),
            ),
            "cc" => local(CcProgram, &CcQuery, &fragments, stats, threads, ck, |out| {
                digest_u64_map(&out)
            }),
            "pagerank" => local(
                PageRankProgram::new(graph.num_vertices()),
                &PageRankQuery::default(),
                &fragments,
                stats,
                threads,
                ck,
                |out| digest_f64_map(&out),
            ),
            "cf" => local(
                CfProgram::new(cf_num_users(graph.num_vertices() as u64)),
                &cf_query(),
                &fragments,
                stats,
                threads,
                ck,
                |out| digest_cf(&out),
            ),
            other => unreachable!("job_fragments admitted weighted algo {other:?}"),
        },
        JobGraph::Labeled(_, fragments) => match job.algo.as_str() {
            "sim" => local(
                SimProgram,
                &sim_query(),
                &fragments,
                stats,
                threads,
                ck,
                |out| digest_sim(&out),
            ),
            "subiso" => local(
                SubIsoProgram,
                &subiso_query(),
                &fragments,
                stats,
                threads,
                ck,
                |out| digest_embeddings(&out),
            ),
            "keyword" => local(
                KeywordProgram,
                &keyword_query(),
                &fragments,
                stats,
                threads,
                ck,
                |out| digest_keyword(&out),
            ),
            "marketing" => local(
                MarketingProgram,
                &marketing_query(job)?,
                &fragments,
                stats,
                threads,
                ck,
                |out| digest_prospects(&out),
            ),
            other => unreachable!("job_fragments admitted labeled algo {other:?}"),
        },
    }
}

/// Runs `job` over real TCP sockets with worker threads in this process, one
/// of which is killed — its socket torn down, the SIGKILL event at the
/// transport level — upon receiving command `kill_at`. The coordinator
/// recovers via [`run_coordinator_connections_recoverable`]. This is the
/// deterministic in-process recovery drill the chaos tests and the
/// `recovery_ms` benchmark column share.
pub fn run_local_recoverable_tcp(
    job: &JobSpec,
    kill_worker: usize,
    kill_at: usize,
) -> io::Result<JobOutcome> {
    run_local_recoverable_tcp_plan(job, &[(kill_worker, kill_at)], &[])
}

/// The multi-victim, cascading form of [`run_local_recoverable_tcp`]:
/// `kills` schedules `(worker, kill_at)` deaths for the initial workers
/// (several entries with the same `kill_at` exercise same-superstep batch
/// recovery), and each `replacement_kills` entry `(worker, kill_at)` is
/// consumed by one respawn of that worker, whose *replacement* then dies at
/// its own command index — cascading failure mid-replay. Repeat a worker in
/// `replacement_kills` to drive it into its crash-loop budget.
pub fn run_local_recoverable_tcp_plan(
    job: &JobSpec,
    kills: &[(usize, usize)],
    replacement_kills: &[(usize, usize)],
) -> io::Result<JobOutcome> {
    use std::net::{Shutdown, TcpListener, TcpStream};
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let mut job = job.clone();
    if job.checkpoint_every == 0 {
        job.checkpoint_every = 1;
    }
    let n = job.workers as usize;
    for &(worker, _) in kills.iter().chain(replacement_kills) {
        if worker >= n {
            return Err(bad_data(format!(
                "kill schedule names worker {worker}, but the job has {n} workers"
            )));
        }
    }
    let socket_kill = |stream: &TcpStream, kill_at: usize| -> io::Result<KillPlan> {
        let victim = stream.try_clone()?;
        Ok((
            kill_at,
            Box::new(move || {
                let _ = victim.shutdown(Shutdown::Both);
            }),
        ))
    };
    std::thread::scope(|scope| {
        // Connect + accept strictly in sequence so accepted-stream order is
        // fragment order — the index mapping must be deterministic.
        let mut streams = Vec::with_capacity(n);
        for index in 0..n {
            let connect = TcpStream::connect(addr)?;
            let (accepted, _) = listener.accept()?;
            let kill = match kills.iter().find(|&&(worker, _)| worker == index) {
                Some(&(_, kill_at)) => Some(socket_kill(&connect, kill_at)?),
                None => None,
            };
            scope.spawn(move || {
                // A killed worker exits with a torn-down connection; the
                // replacement (respawned below) reports in its stead.
                let _ = run_worker_connection_with(connect, None, kill);
            });
            streams.push(accepted);
        }
        let listener = &listener;
        let mut pending: Vec<(usize, usize)> = replacement_kills.to_vec();
        let mut respawn = |worker: usize| -> io::Result<TcpStream> {
            let connect = TcpStream::connect(addr)?;
            let (accepted, _) = listener.accept()?;
            let kill = match pending.iter().position(|&(w, _)| w == worker) {
                Some(i) => {
                    let (_, kill_at) = pending.remove(i);
                    Some(socket_kill(&connect, kill_at)?)
                }
                None => None,
            };
            scope.spawn(move || {
                let _ = run_worker_connection_with(connect, None, kill);
            });
            Ok(accepted)
        };
        run_coordinator_connections_recoverable(
            &job,
            streams,
            &EngineConfig::default(),
            &mut respawn,
        )
    })
}

/// Owns a Unix-domain socket path for a listener's lifetime: unlinks a stale
/// socket left behind by a dead process before binding, and removes the
/// socket again on drop — including drops driven by a panic unwinding.
pub struct UdsPathGuard {
    path: std::path::PathBuf,
}

impl UdsPathGuard {
    /// Claims `path`, unlinking a pre-existing *socket* there. Anything else
    /// (a regular file, a directory) is an error — a stale socket is the only
    /// thing this guard may destroy.
    pub fn claim(path: impl Into<std::path::PathBuf>) -> io::Result<Self> {
        let path = path.into();
        match std::fs::symlink_metadata(&path) {
            Ok(meta) => {
                #[cfg(unix)]
                let is_socket = {
                    use std::os::unix::fs::FileTypeExt;
                    meta.file_type().is_socket()
                };
                #[cfg(not(unix))]
                let is_socket = false;
                if is_socket {
                    std::fs::remove_file(&path)?;
                } else {
                    return Err(bad_data(format!(
                        "{} exists and is not a socket; refusing to unlink",
                        path.display()
                    )));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Self { path })
    }

    /// The guarded path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for UdsPathGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_wire_roundtrip() {
        for (graph, token) in [
            (
                GraphSpec::Road {
                    width: 12,
                    height: 9,
                    seed: 7,
                },
                None,
            ),
            (
                GraphSpec::Social {
                    persons: 40,
                    products: 5,
                    seed: 21,
                },
                Some("secret".to_string()),
            ),
        ] {
            let job = JobSpec {
                algo: "sssp".into(),
                graph,
                strategy: "hash".into(),
                workers: 4,
                index: 2,
                source: 0,
                threads: 2,
                vertices: 108,
                checkpoint_every: 3,
                token,
            };
            let bytes = job.encode_to_vec();
            let mut reader = WireReader::new(&bytes);
            assert_eq!(JobSpec::decode(&mut reader).unwrap(), job);
            reader.finish().unwrap();
        }
    }

    #[test]
    fn graph_spec_parsing() {
        assert_eq!(
            GraphSpec::parse("road:12x9:7").unwrap(),
            GraphSpec::Road {
                width: 12,
                height: 9,
                seed: 7
            }
        );
        assert_eq!(
            GraphSpec::parse("ba:300:3:11").unwrap(),
            GraphSpec::Ba {
                n: 300,
                m: 3,
                seed: 11
            }
        );
        assert_eq!(
            GraphSpec::parse("social:80:6:21").unwrap(),
            GraphSpec::Social {
                persons: 80,
                products: 6,
                seed: 21
            }
        );
        assert!(GraphSpec::parse("road:12:7").is_err());
        assert!(GraphSpec::parse("lattice:3").is_err());
    }

    #[test]
    fn mismatched_algo_and_graph_families_are_rejected() {
        let mut job = JobSpec {
            algo: "sim".into(),
            graph: GraphSpec::Road {
                width: 4,
                height: 4,
                seed: 1,
            },
            strategy: "hash".into(),
            workers: 2,
            index: 0,
            source: 0,
            threads: 1,
            vertices: 0,
            checkpoint_every: 0,
            token: None,
        };
        assert!(run_local_framed(&job).is_err(), "sim needs a social graph");
        job.algo = "sssp".into();
        job.graph = GraphSpec::Social {
            persons: 20,
            products: 3,
            seed: 1,
        };
        assert!(
            run_local_framed(&job).is_err(),
            "sssp needs a weighted graph"
        );
    }

    fn weighted_job(algo: &str) -> JobSpec {
        JobSpec {
            algo: algo.into(),
            graph: GraphSpec::Ba {
                n: 200,
                m: 3,
                seed: 5,
            },
            strategy: "hash".into(),
            workers: 3,
            index: 0,
            source: 0,
            threads: 1,
            vertices: 0,
            checkpoint_every: 0,
            token: None,
        }
    }

    fn labeled_job(algo: &str) -> JobSpec {
        JobSpec {
            algo: algo.into(),
            graph: GraphSpec::Social {
                persons: 60,
                products: 6,
                seed: 21,
            },
            strategy: "hash".into(),
            workers: 3,
            index: 0,
            source: 0,
            threads: 1,
            vertices: 0,
            checkpoint_every: 0,
            token: None,
        }
    }

    #[test]
    fn local_framed_runs_agree_across_algorithms() {
        // The in-process framed reference itself must be deterministic for
        // every query class, on both graph families.
        for algo in ["sssp", "cc", "pagerank", "cf"] {
            let job = weighted_job(algo);
            let first = run_local_framed(&job).unwrap();
            let second = run_local_framed(&job).unwrap();
            assert_eq!(first.digests, second.digests, "{algo}");
            assert_eq!(first.stats.supersteps, second.stats.supersteps, "{algo}");
            assert_eq!(first.stats.messages, second.stats.messages, "{algo}");
            assert!(first.stats.bytes > 0);
        }
        for algo in ["sim", "subiso", "keyword", "marketing"] {
            let job = labeled_job(algo);
            let first = run_local_framed(&job).unwrap();
            let second = run_local_framed(&job).unwrap();
            assert_eq!(first.digests, second.digests, "{algo}");
            assert_eq!(first.stats.supersteps, second.stats.supersteps, "{algo}");
        }
    }

    #[test]
    fn checkpoint_cadence_does_not_change_results() {
        // Checkpoints ride on report frames; the answer and the superstep
        // count are invariant under any cadence.
        for algo in ["sssp", "sim"] {
            let mut job = if algo == "sssp" {
                weighted_job(algo)
            } else {
                labeled_job(algo)
            };
            let reference = run_local_framed(&job).unwrap();
            for k in [1u32, 2, 4] {
                job.checkpoint_every = k;
                let run = run_local_framed(&job).unwrap();
                assert_eq!(run.digests, reference.digests, "{algo} k={k}");
                assert_eq!(
                    run.stats.supersteps, reference.stats.supersteps,
                    "{algo} k={k}"
                );
            }
        }
    }

    #[test]
    fn recovered_tcp_runs_match_the_undisturbed_reference() {
        // One in-process drill per graph family: kill worker 1 at its second
        // command, recover, and pin the digests and superstep count against
        // an undisturbed framed run of the same job.
        for (algo, job) in [("sssp", weighted_job("sssp")), ("sim", labeled_job("sim"))] {
            let reference = run_local_framed(&job).unwrap();
            // Kill on the last evaluation command the worker will receive,
            // so the schedule fires whatever the algorithm's depth.
            let kill_at = (reference.stats.supersteps - 1).min(2);
            let recovered = run_local_recoverable_tcp(&job, 1, kill_at).unwrap();
            assert_eq!(recovered.digests, reference.digests, "{algo}");
            assert_eq!(
                recovered.stats.supersteps, reference.stats.supersteps,
                "{algo}"
            );
            assert!(recovered.stats.recoveries >= 1, "{algo}: a kill happened");
        }
    }

    #[test]
    fn a_crash_looping_worker_exhausts_its_recovery_budget() {
        // Worker 1 dies, and every replacement dies again on its first
        // command: after the per-worker budget the coordinator gives up with
        // a typed crash-loop error instead of respawning forever.
        let job = weighted_job("sssp");
        let replacement_kills = [(1usize, 0usize); 8];
        let err = run_local_recoverable_tcp_plan(&job, &[(1, 1)], &replacement_kills)
            .expect_err("a crash-looping worker must exhaust its budget");
        let message = err.to_string();
        assert!(
            message.contains("crash-loop budget"),
            "expected a crash-loop budget error, got: {message}"
        );
    }

    #[test]
    fn uds_path_guard_unlinks_stale_sockets_but_never_files() {
        let dir = std::env::temp_dir();
        let sock = dir.join(format!("grape-guard-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        // A real stale socket is reclaimed...
        drop(std::os::unix::net::UnixListener::bind(&sock).unwrap());
        assert!(sock.exists());
        let guard = UdsPathGuard::claim(&sock).unwrap();
        assert!(!guard.path().exists(), "stale socket unlinked");
        drop(guard);
        // ...but a regular file at the path is refused.
        std::fs::write(&sock, b"precious").unwrap();
        assert!(UdsPathGuard::claim(&sock).is_err());
        std::fs::remove_file(&sock).unwrap();
    }
}
