//! Query-service mode: resident fragments, a unified session API, and
//! concurrent-query serving.
//!
//! The one-shot pipeline (build fragments → spin up workers → one fixpoint →
//! tear everything down) pays the whole load/partition/ship cost per query.
//! This module keeps everything resident instead, the way GRAPE's production
//! descendants run:
//!
//! * [`GrapeService`] is the daemon: it accepts framed TCP (or Unix-domain)
//!   connections, loads shipped fragments **once** into a registry keyed by
//!   graph id, and then serves a stream of typed [`Query`] submissions over
//!   those resident fragments — each query a fresh BSP session fenced by its
//!   own run id in the wire epoch header, with per-query scratch buffers
//!   recycled through a [`ScratchPool`].
//! * [`Session`] is the client facade that collapses the entry-point sprawl
//!   (`run`, `run_on_graph`, `run_coordinator`, …) into
//!   `connect → load → submit`: [`Session::connect`] picks the backend
//!   (in-process resident engine, or remote daemons), [`Session::load`]
//!   partitions and ships a graph once, and [`Session::submit`] returns a
//!   [`QueryHandle`] whose [`QueryHandle::join`] yields the typed
//!   [`QueryResult`] plus per-query [`RunStats`]. Queries of different
//!   classes run concurrently over the same loaded fragments; results are
//!   bit-identical to cold one-shot runs.
//!
//! ## Service protocol
//!
//! On top of the session handshake of the crate root ([`TAG_HELLO`] with the
//! auth token, validated before anything else):
//!
//! 1. `TAG_LOAD` carries a [`LoadSpec`] naming the graph id, payload family,
//!    fragment index and global vertex count, immediately followed by one
//!    [`TAG_FRAGMENT`] frame at the same epoch shipping the fragment itself.
//!    The daemon stores the fragment in its registry and acks with
//!    `TAG_LOADED`.
//! 2. `TAG_QUERY` carries a [`QueryJob`] — the typed query plus its run id —
//!    stamped with that run id as the frame epoch. The daemon resolves the
//!    resident fragment and enters the ordinary BSP worker loop at that
//!    epoch; the client drives the ordinary coordinator fixpoint over a
//!    per-query slot table.
//! 3. After `Finish`, the worker answers with one `TAG_RESULT` frame: the
//!    order-independent digest of its assembled partial plus the
//!    snapshot-encoded partial itself, which the client restores and
//!    assembles into the typed output.
//!
//! Recovery (PR 7–8) is intact: with a checkpoint cadence set, a worker lost
//! mid-query is replaced by a *fresh connection to the same daemon* — the
//! resident fragment is **not** re-shipped — resumed from its checkpoint at
//! a bumped epoch, and replayed. Other in-flight queries run on their own
//! connections and epochs and are never disturbed.

use crate::{bad_data, cf_num_users, expect_hello, UdsPathGuard};
use grape_algo::{
    digest_cf, digest_embeddings, digest_f64_map, digest_keyword, digest_prospects, digest_sim,
    digest_u64_map,
};
use grape_algo::{
    CcProgram, CfProgram, KeywordProgram, MarketingProgram, PageRankProgram, Query, QueryResult,
    SimProgram, SsspProgram, SubIsoProgram,
};
use grape_comm::wire::{
    self, Wire, WireError, WireReader, TAG_HELLO, TAG_LOAD, TAG_LOADED, TAG_QUERY, TAG_RESULT,
    TAG_UPDATE, TAG_UPDATED,
};
use grape_comm::CommStats;
use grape_core::chaos::{ChaosConfig, ChaosWorkerTransport};
use grape_core::engine::run_worker_with;
use grape_core::par::ThreadCount;
use grape_core::scratch::ScratchPool;
use grape_core::transport::{FramedStreamCoord, FramedStreamWorker, SplitStream};
use grape_core::{
    decode_fragment, encode_fragment_epoch, ConvergedState, DeltaLog, EngineConfig, GrapeEngine,
    MutationProfile, PieProgram, RunStats, Seeded, VertexId, TAG_FRAGMENT,
};
use grape_graph::delta::GraphMutation;
use grape_graph::generators::{
    barabasi_albert, labeled_social, road_network, RoadNetworkConfig, SocialGraphConfig,
};
use grape_graph::labels::{LabeledGraph, LabeledVertex};
use grape_graph::{DeltaGraph, WeightedGraph};
use grape_partition::{
    build_fragments, resolve_net_mutations, BuiltinStrategy, Fragment, PartitionAssignment,
    ResolvedMutations,
};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Endpoints and sockets
// ---------------------------------------------------------------------------

/// Where a [`GrapeService`] daemon listens / where a [`Session`] connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:4817`.
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Uds(std::path::PathBuf),
}

impl Endpoint {
    /// Parses `uds:PATH` as a Unix-domain endpoint, anything else as TCP.
    pub fn parse(text: &str) -> Endpoint {
        #[cfg(unix)]
        if let Some(path) = text.strip_prefix("uds:") {
            return Endpoint::Uds(path.into());
        }
        Endpoint::Tcp(text.to_string())
    }

    /// Opens a connection to the endpoint.
    pub fn connect(&self) -> io::Result<ServiceSocket> {
        match self {
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(ServiceSocket::Tcp),
            #[cfg(unix)]
            Endpoint::Uds(path) => {
                std::os::unix::net::UnixStream::connect(path).map(ServiceSocket::Uds)
            }
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            Endpoint::Uds(path) => write!(f, "uds:{}", path.display()),
        }
    }
}

/// A connected service socket of either transport, so one coordinator can
/// drive a mixed fleet of TCP and Unix-domain daemons.
#[derive(Debug)]
pub enum ServiceSocket {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Uds(std::os::unix::net::UnixStream),
}

impl Read for ServiceSocket {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ServiceSocket::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ServiceSocket::Uds(s) => s.read(buf),
        }
    }
}

impl Write for ServiceSocket {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ServiceSocket::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ServiceSocket::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ServiceSocket::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ServiceSocket::Uds(s) => s.flush(),
        }
    }
}

impl SplitStream for ServiceSocket {
    fn split(self) -> io::Result<(Self, Self)> {
        match self {
            ServiceSocket::Tcp(s) => {
                let (r, w) = s.split()?;
                Ok((ServiceSocket::Tcp(r), ServiceSocket::Tcp(w)))
            }
            #[cfg(unix)]
            ServiceSocket::Uds(s) => {
                let (r, w) = s.split()?;
                Ok((ServiceSocket::Uds(r), ServiceSocket::Uds(w)))
            }
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            ServiceSocket::Tcp(s) => SplitStream::set_read_timeout(s, timeout),
            #[cfg(unix)]
            ServiceSocket::Uds(s) => SplitStream::set_read_timeout(s, timeout),
        }
    }
}

/// A [`SplitStream`] whose connection can additionally be aliased
/// (`try_clone`) and torn down — what a resident connection needs so one
/// query's BSP transport can borrow the socket while the outer serve loop
/// keeps it, and so kill drills can sever it mid-query.
pub trait ServiceStream: SplitStream {
    /// A second owned handle to the same connection.
    fn try_clone_stream(&self) -> io::Result<Self>;

    /// Severs the connection in both directions — the transport-level
    /// equivalent of SIGKILLing the worker that owns it.
    fn shutdown_both(&self) -> io::Result<()>;
}

impl ServiceStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

#[cfg(unix)]
impl ServiceStream for std::os::unix::net::UnixStream {
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

impl ServiceStream for ServiceSocket {
    fn try_clone_stream(&self) -> io::Result<Self> {
        match self {
            ServiceSocket::Tcp(s) => s.try_clone().map(ServiceSocket::Tcp),
            #[cfg(unix)]
            ServiceSocket::Uds(s) => s.try_clone().map(ServiceSocket::Uds),
        }
    }

    fn shutdown_both(&self) -> io::Result<()> {
        match self {
            ServiceSocket::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            ServiceSocket::Uds(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire messages
// ---------------------------------------------------------------------------

/// Payload of a [`TAG_LOAD`] frame: which graph the fragment that follows
/// belongs to, and where it fits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadSpec {
    /// Session-unique graph id; queries name the resident graph by it.
    pub graph_id: u64,
    /// Payload family: 0 = weighted (`(), f64`), 1 = labeled
    /// (`LabeledVertex, String`).
    pub family: u8,
    /// Fragment index the following [`TAG_FRAGMENT`] frame carries.
    pub index: u32,
    /// Total number of fragments/workers of the graph.
    pub workers: u32,
    /// Global vertex count (PageRank and CF need |V|).
    pub vertices: u64,
}

impl Wire for LoadSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.graph_id.encode(out);
        self.family.encode(out);
        self.index.encode(out);
        self.workers.encode(out);
        self.vertices.encode(out);
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(LoadSpec {
            graph_id: reader.u64()?,
            family: reader.u8()?,
            index: reader.u32()?,
            workers: reader.u32()?,
            vertices: reader.u64()?,
        })
    }
}

/// Payload of a [`TAG_QUERY`] frame: one typed query submission against a
/// resident graph. The frame's epoch must equal [`QueryJob::run_id`] — the
/// query's fencing epoch for its whole BSP session (recovery bumps it per
/// replaced worker, starting from this base).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryJob {
    /// The resident graph to query.
    pub graph_id: u64,
    /// Which fragment this connection serves.
    pub index: u32,
    /// Total number of workers of the query.
    pub workers: u32,
    /// The query's run id — also the wire epoch of this submission.
    pub run_id: u32,
    /// Intra-worker threads (0 = auto).
    pub threads: u32,
    /// Checkpoint cadence for recoverable queries (0 = no checkpoints).
    pub checkpoint_every: u32,
    /// The typed query itself.
    pub query: Query,
    /// Chaos drill: sever the connection upon receiving this command index.
    pub kill_at: Option<u32>,
    /// Warm start: the worker's converged partial from a previous run of the
    /// same query, plus the dirty set of the updates applied since. `None`
    /// runs the ordinary cold PEval.
    pub seed: Option<IncrementalSeed>,
}

impl Wire for QueryJob {
    fn encode(&self, out: &mut Vec<u8>) {
        self.graph_id.encode(out);
        self.index.encode(out);
        self.workers.encode(out);
        self.run_id.encode(out);
        self.threads.encode(out);
        self.checkpoint_every.encode(out);
        self.query.encode(out);
        self.kill_at.encode(out);
        self.seed.encode(out);
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(QueryJob {
            graph_id: reader.u64()?,
            index: reader.u32()?,
            workers: reader.u32()?,
            run_id: reader.u32()?,
            threads: reader.u32()?,
            checkpoint_every: reader.u32()?,
            query: Query::decode(reader)?,
            kill_at: Option::<u32>::decode(reader)?,
            seed: Option::<IncrementalSeed>::decode(reader)?,
        })
    }
}

/// Warm-start payload riding on a [`QueryJob`]: the worker's snapshot-encoded
/// converged partial from the previous run of the same query, and the merged
/// dirty set + mutation profile of every update applied since it converged.
/// The worker seeds IncEval from it instead of running PEval cold; programs
/// that cannot seed under the profile fall back to cold automatically.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalSeed {
    /// Snapshot-encoded converged partial of this worker's fragment.
    pub snapshot: Vec<u8>,
    /// Union of the dirty sets of the updates applied since the snapshot
    /// converged (global ids, sorted).
    pub dirty: Vec<VertexId>,
    /// Merged shape of those updates.
    pub profile: MutationProfile,
}

impl Wire for IncrementalSeed {
    fn encode(&self, out: &mut Vec<u8>) {
        self.snapshot.encode(out);
        self.dirty.encode(out);
        self.profile.encode(out);
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(IncrementalSeed {
            snapshot: Vec::decode(reader)?,
            dirty: Vec::decode(reader)?,
            profile: MutationProfile::decode(reader)?,
        })
    }
}

/// Header of a [`TAG_UPDATE`] frame: which resident fragment the resolved
/// mutation batch that follows (in the same frame body) targets, and the
/// fragment version the batch advances it to. Versions make retries
/// idempotent: a daemon that already sits at `version` acks without
/// re-applying; a gap is a protocol error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateSpec {
    /// The resident graph to mutate.
    pub graph_id: u64,
    /// Payload family of the batch (must match the resident graph's).
    pub family: u8,
    /// Fragment index the batch targets.
    pub index: u32,
    /// Version the fragment reaches after this batch (first update = 1).
    pub version: u64,
    /// Global vertex count after the update (PageRank and CF need |V|).
    pub vertices: u64,
}

impl Wire for UpdateSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.graph_id.encode(out);
        self.family.encode(out);
        self.index.encode(out);
        self.version.encode(out);
        self.vertices.encode(out);
    }

    fn decode(reader: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(UpdateSpec {
            graph_id: reader.u64()?,
            family: reader.u8()?,
            index: reader.u32()?,
            version: reader.u64()?,
            vertices: reader.u64()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Graphs a session can load
// ---------------------------------------------------------------------------

/// A graph in one of the two payload families the engine serves.
#[derive(Debug, Clone)]
pub enum SessionGraph {
    /// Unit vertices, `f64` edge weights: `sssp`, `cc`, `pagerank`, `cf`.
    Weighted(WeightedGraph),
    /// Labeled vertices, relation-typed edges: `sim`, `subiso`, `keyword`,
    /// `marketing`.
    Labeled(LabeledGraph),
}

impl From<WeightedGraph> for SessionGraph {
    fn from(graph: WeightedGraph) -> Self {
        SessionGraph::Weighted(graph)
    }
}

impl From<LabeledGraph> for SessionGraph {
    fn from(graph: LabeledGraph) -> Self {
        SessionGraph::Labeled(graph)
    }
}

impl SessionGraph {
    /// Generates the deterministic graph a [`crate::GraphSpec`] recipe
    /// describes: `road`/`ba` specs yield weighted graphs, `social` specs
    /// labeled ones — the same generators and defaults the one-shot job path
    /// uses, so service and cold runs see bit-identical inputs.
    pub fn generate(spec: &crate::GraphSpec) -> io::Result<SessionGraph> {
        match spec {
            crate::GraphSpec::Road {
                width,
                height,
                seed,
            } => road_network(
                RoadNetworkConfig {
                    width: *width as usize,
                    height: *height as usize,
                    ..Default::default()
                },
                *seed as u64,
            )
            .map(SessionGraph::Weighted)
            .map_err(|e| bad_data(format!("bad road spec: {e}"))),
            crate::GraphSpec::Ba { n, m, seed } => {
                barabasi_albert(*n as usize, *m as usize, *seed as u64)
                    .map(SessionGraph::Weighted)
                    .map_err(|e| bad_data(format!("bad BA spec: {e}")))
            }
            crate::GraphSpec::Social {
                persons,
                products,
                seed,
            } => labeled_social(
                SocialGraphConfig {
                    num_persons: *persons as usize,
                    num_products: *products as usize,
                    ..Default::default()
                },
                *seed as u64,
            )
            .map(SessionGraph::Labeled)
            .map_err(|e| bad_data(format!("bad social spec: {e}"))),
        }
    }

    /// Global vertex count.
    pub fn num_vertices(&self) -> usize {
        match self {
            SessionGraph::Weighted(g) => g.num_vertices(),
            SessionGraph::Labeled(g) => g.num_vertices(),
        }
    }
}

/// Built fragments of a loaded graph, per family.
enum SessionFragments {
    Weighted(Vec<Fragment<(), f64>>),
    Labeled(Vec<Fragment<LabeledVertex, String>>),
}

impl SessionFragments {
    fn family(&self) -> u8 {
        match self {
            SessionFragments::Weighted(_) => 0,
            SessionFragments::Labeled(_) => 1,
        }
    }
}

/// The loaded graph's delta overlay, per family — the session's source of
/// truth for the live graph, mutated by [`Session::update`].
enum SessionDelta {
    Weighted(DeltaGraph<(), f64>),
    Labeled(DeltaGraph<LabeledVertex, String>),
}

/// A mutation batch submitted through [`Session::update`], in the family of
/// the loaded graph.
#[derive(Debug, Clone)]
pub enum SessionUpdate {
    /// Mutations of a weighted graph.
    Weighted(Vec<GraphMutation<(), f64>>),
    /// Mutations of a labeled graph.
    Labeled(Vec<GraphMutation<LabeledVertex, String>>),
}

impl From<Vec<GraphMutation<(), f64>>> for SessionUpdate {
    fn from(batch: Vec<GraphMutation<(), f64>>) -> Self {
        SessionUpdate::Weighted(batch)
    }
}

impl From<Vec<GraphMutation<LabeledVertex, String>>> for SessionUpdate {
    fn from(batch: Vec<GraphMutation<LabeledVertex, String>>) -> Self {
        SessionUpdate::Labeled(batch)
    }
}

/// Receipt of one applied [`Session::update`] batch.
#[derive(Debug, Clone)]
pub struct UpdateReceipt {
    /// The graph version the batch advanced the session to (first update = 1).
    pub version: u64,
    /// Number of live vertices whose neighbourhood the batch changed.
    pub dirty: usize,
    /// Shape of the batch.
    pub profile: MutationProfile,
}

/// A graph made resident by [`Session::load`] and kept live across
/// [`Session::update`] batches.
struct LoadedGraph {
    graph_id: u64,
    vertices: u64,
    fragments: Arc<SessionFragments>,
    /// Delta overlay over the loaded graph — the live global view updates
    /// are applied to (and the payload source for resolving them).
    delta: SessionDelta,
    /// The partition assignment, extended in place as updates insert
    /// vertices, so incremental fragments and a fresh cut agree on ownership.
    assignment: PartitionAssignment,
    /// Update history: per-version dirty sets + profiles, so a converged
    /// state cached at version `v` can be re-seeded across any number of
    /// later updates.
    log: DeltaLog,
    /// Converged states keyed by the query's wire encoding: the per-fragment
    /// snapshot-encoded partials of the last completed run of that query,
    /// and the graph version they converged at.
    converged: HashMap<Vec<u8>, ConvergedState>,
}

// ---------------------------------------------------------------------------
// The daemon: GrapeService
// ---------------------------------------------------------------------------

/// Fragments resident in a daemon, per family, one slot per fragment index.
enum ResidentFragments {
    Weighted(Vec<Option<Arc<Fragment<(), f64>>>>),
    Labeled(Vec<Option<Arc<Fragment<LabeledVertex, String>>>>),
}

impl ResidentFragments {
    fn family(&self) -> u8 {
        match self {
            ResidentFragments::Weighted(_) => 0,
            ResidentFragments::Labeled(_) => 1,
        }
    }
}

/// One graph resident in a daemon.
struct ResidentGraph {
    workers: u32,
    vertices: u64,
    fragments: ResidentFragments,
    /// Per-fragment update version (how many batches each slot has applied).
    /// Kept per slot because one daemon may host several fragments of the
    /// same graph, each updated over its own connection.
    versions: Vec<u64>,
}

/// Daemon knobs.
#[derive(Debug, Clone, Default)]
pub struct ServiceOptions {
    /// Required client auth token; `None` accepts every connection.
    pub token: Option<String>,
    /// Read timeout on the hello handshake (resident connections block
    /// indefinitely between frames afterwards; their lifetime is the
    /// client's).
    pub handshake_timeout: Option<Duration>,
}

/// Daemon-wide shared state.
struct ServiceState {
    registry: Mutex<HashMap<u64, ResidentGraph>>,
    scratch: ScratchPool,
    options: ServiceOptions,
    stop: AtomicBool,
}

/// The listening half of a daemon.
enum ServiceListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(std::os::unix::net::UnixListener, UdsPathGuard),
}

/// The resident query daemon: loads shipped fragments once, then serves an
/// unbounded stream of typed queries over them (see the module docs for the
/// protocol). One daemon process can host any number of graphs and fragment
/// indexes; each accepted connection is served on its own thread, so
/// concurrent queries — of the same or different classes — multiplex freely
/// over the same resident fragments.
pub struct GrapeService {
    listener: ServiceListener,
    state: Arc<ServiceState>,
}

impl GrapeService {
    /// Binds a TCP daemon on `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// port).
    pub fn bind(addr: &str, options: ServiceOptions) -> io::Result<GrapeService> {
        Ok(GrapeService {
            listener: ServiceListener::Tcp(TcpListener::bind(addr)?),
            state: Arc::new(ServiceState {
                registry: Mutex::new(HashMap::new()),
                scratch: ScratchPool::new(),
                options,
                stop: AtomicBool::new(false),
            }),
        })
    }

    /// Binds a Unix-domain daemon on `path`, reclaiming a stale socket left
    /// by a dead daemon (see [`UdsPathGuard`]).
    #[cfg(unix)]
    pub fn bind_uds(
        path: impl Into<std::path::PathBuf>,
        options: ServiceOptions,
    ) -> io::Result<GrapeService> {
        let guard = UdsPathGuard::claim(path)?;
        let listener = std::os::unix::net::UnixListener::bind(guard.path())?;
        Ok(GrapeService {
            listener: ServiceListener::Uds(listener, guard),
            state: Arc::new(ServiceState {
                registry: Mutex::new(HashMap::new()),
                scratch: ScratchPool::new(),
                options,
                stop: AtomicBool::new(false),
            }),
        })
    }

    /// The endpoint clients should connect to.
    pub fn endpoint(&self) -> io::Result<Endpoint> {
        match &self.listener {
            ServiceListener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            ServiceListener::Uds(_, guard) => Ok(Endpoint::Uds(guard.path().to_path_buf())),
        }
    }

    /// Serves connections until shut down (blocking). Each accepted
    /// connection runs on its own thread; a connection error tears down that
    /// connection only, never the daemon.
    pub fn serve(self) -> io::Result<()> {
        loop {
            let socket = match &self.listener {
                ServiceListener::Tcp(l) => l.accept().map(|(s, _)| ServiceSocket::Tcp(s)),
                #[cfg(unix)]
                ServiceListener::Uds(l, _) => l.accept().map(|(s, _)| ServiceSocket::Uds(s)),
            };
            if self.state.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let socket = socket?;
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || {
                if let Err(err) = serve_connection(socket, &state) {
                    eprintln!("grape service: connection error: {err}");
                }
            });
        }
    }

    /// Runs [`GrapeService::serve`] on a background thread and returns a
    /// handle that can shut the daemon down.
    pub fn spawn(self) -> io::Result<ServiceHandle> {
        let endpoint = self.endpoint()?;
        let state = Arc::clone(&self.state);
        let thread = std::thread::spawn(move || self.serve());
        Ok(ServiceHandle {
            endpoint,
            state,
            thread: Some(thread),
        })
    }
}

/// Handle to a daemon spawned with [`GrapeService::spawn`].
pub struct ServiceHandle {
    endpoint: Endpoint,
    state: Arc<ServiceState>,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
}

impl ServiceHandle {
    /// The endpoint clients should connect to.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Stops accepting connections and joins the daemon thread. In-flight
    /// connections finish on their own threads.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.state.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop so it observes the stop flag.
        let _ = self.endpoint.connect();
        match self.thread.take() {
            Some(thread) => thread
                .join()
                .map_err(|_| io::Error::other("service thread panicked"))?,
            None => Ok(()),
        }
    }
}

/// One accepted connection's life: authenticate, then serve `TAG_LOAD` and
/// `TAG_QUERY` frames until the client closes.
fn serve_connection<S: ServiceStream>(mut stream: S, state: &ServiceState) -> io::Result<()> {
    expect_hello(
        &mut stream,
        state.options.token.as_deref(),
        0,
        state.options.handshake_timeout,
    )?;
    loop {
        let Some((tag, epoch, body)) = wire::read_frame_io_epoch(&mut stream)? else {
            return Ok(()); // Client done with this connection.
        };
        match tag {
            TAG_LOAD => {
                let mut reader = WireReader::new(&body);
                let spec = LoadSpec::decode(&mut reader)
                    .and_then(|s| reader.finish().map(|()| s))
                    .map_err(|e| bad_data(format!("bad load spec: {e}")))?;
                load_fragment(&mut stream, spec, epoch, state)?;
            }
            TAG_QUERY => {
                let mut reader = WireReader::new(&body);
                let job = QueryJob::decode(&mut reader)
                    .and_then(|j| reader.finish().map(|()| j))
                    .map_err(|e| bad_data(format!("bad query job: {e}")))?;
                if epoch != job.run_id {
                    return Err(bad_data(format!(
                        "query frame at epoch {epoch} but run id {}",
                        job.run_id
                    )));
                }
                serve_query(&stream, job, state)?;
            }
            TAG_UPDATE => {
                let mut reader = WireReader::new(&body);
                let spec = UpdateSpec::decode(&mut reader)
                    .map_err(|e| bad_data(format!("bad update spec: {e}")))?;
                if epoch != spec.version as u32 {
                    return Err(bad_data(format!(
                        "update frame at epoch {epoch} but version {}",
                        spec.version
                    )));
                }
                apply_update(&mut stream, spec, reader, state)?;
            }
            other => {
                return Err(bad_data(format!(
                    "unexpected frame tag {other:#04x} on a service connection"
                )))
            }
        }
    }
}

/// Handles one `TAG_LOAD`: reads the following fragment frame, stores the
/// fragment in the registry, and acks.
fn load_fragment<S: ServiceStream>(
    stream: &mut S,
    spec: LoadSpec,
    epoch: u32,
    state: &ServiceState,
) -> io::Result<()> {
    let (ftag, fepoch, fbody) = wire::read_frame_io_epoch(stream)?
        .ok_or_else(|| bad_data("connection closed before the fragment"))?;
    if ftag != TAG_FRAGMENT {
        return Err(bad_data(format!(
            "expected fragment frame after load spec, got tag {ftag:#04x}"
        )));
    }
    if fepoch != epoch {
        return Err(bad_data(format!(
            "fragment frame at epoch {fepoch}, load spec at epoch {epoch}"
        )));
    }
    if spec.index >= spec.workers {
        return Err(bad_data(format!(
            "fragment index {} out of range for {} workers",
            spec.index, spec.workers
        )));
    }

    fn store<V, E>(
        slots: &mut [Option<Arc<Fragment<V, E>>>],
        tag: u8,
        body: &[u8],
        index: u32,
    ) -> io::Result<()>
    where
        V: Wire + Clone + Default,
        E: Wire + Clone,
    {
        let fragment: Fragment<V, E> =
            decode_fragment(tag, body).map_err(|e| bad_data(format!("bad fragment frame: {e}")))?;
        if fragment.id != index as usize {
            return Err(bad_data(format!(
                "shipped fragment {} under load index {index}",
                fragment.id
            )));
        }
        slots[index as usize] = Some(Arc::new(fragment));
        Ok(())
    }

    {
        let mut registry = state.registry.lock().unwrap();
        let entry = registry.entry(spec.graph_id).or_insert_with(|| {
            let n = spec.workers as usize;
            ResidentGraph {
                workers: spec.workers,
                vertices: spec.vertices,
                fragments: match spec.family {
                    0 => ResidentFragments::Weighted(vec![None; n]),
                    _ => ResidentFragments::Labeled(vec![None; n]),
                },
                versions: vec![0; n],
            }
        });
        if entry.workers != spec.workers
            || entry.vertices != spec.vertices
            || entry.fragments.family() != spec.family
            || spec.family > 1
        {
            return Err(bad_data(format!(
                "load spec for graph {} conflicts with its resident shape",
                spec.graph_id
            )));
        }
        match &mut entry.fragments {
            ResidentFragments::Weighted(slots) => store(slots, ftag, &fbody, spec.index)?,
            ResidentFragments::Labeled(slots) => store(slots, ftag, &fbody, spec.index)?,
        }
    }

    // Ack through the per-load scratch buffer: recycled clean or not at all.
    let mut buf = state.scratch.acquire(epoch);
    wire::encode_frame_epoch(TAG_LOADED, epoch, &spec.graph_id, &mut buf);
    stream.write_all(&buf)?;
    stream.flush()?;
    buf.clear();
    state.scratch.release(epoch, buf);
    Ok(())
}

/// Handles one `TAG_UPDATE`: applies the resolved mutation batch that
/// follows the spec in the frame body to the targeted resident fragment,
/// version-fenced so retries are idempotent, and acks with `TAG_UPDATED`.
fn apply_update<S: ServiceStream>(
    stream: &mut S,
    spec: UpdateSpec,
    reader: WireReader<'_>,
    state: &ServiceState,
) -> io::Result<()> {
    fn mutate<V, E>(
        slots: &mut [Option<Arc<Fragment<V, E>>>],
        mut reader: WireReader<'_>,
        index: usize,
    ) -> io::Result<()>
    where
        V: Wire + Clone + Default,
        E: Wire + Clone,
    {
        let resolved = ResolvedMutations::<V, E>::decode(&mut reader)
            .and_then(|r| reader.finish().map(|()| r))
            .map_err(|e| bad_data(format!("bad update batch: {e}")))?;
        let Some(fragment) = &slots[index] else {
            return Err(bad_data(format!(
                "update targets fragment {index}, which was never loaded"
            )));
        };
        let updated = fragment
            .apply_mutations(&resolved)
            .map_err(|e| bad_data(format!("update failed on fragment {index}: {e}")))?;
        slots[index] = Some(Arc::new(updated));
        Ok(())
    }

    let acked_version = {
        let mut registry = state.registry.lock().unwrap();
        let resident = registry.get_mut(&spec.graph_id).ok_or_else(|| {
            bad_data(format!(
                "graph {} is not resident in this service",
                spec.graph_id
            ))
        })?;
        if spec.index >= resident.workers {
            return Err(bad_data(format!(
                "update targets fragment {}/{} of graph {}",
                spec.index, resident.workers, spec.graph_id
            )));
        }
        if resident.fragments.family() != spec.family {
            return Err(bad_data(format!(
                "update family {} conflicts with the resident graph's",
                spec.family
            )));
        }
        let index = spec.index as usize;
        let current = resident.versions[index];
        if spec.version <= current {
            // Already applied (a retry after a lost ack) — idempotent skip.
            current
        } else if spec.version == current + 1 {
            match &mut resident.fragments {
                ResidentFragments::Weighted(slots) => mutate(slots, reader, index)?,
                ResidentFragments::Labeled(slots) => mutate(slots, reader, index)?,
            }
            resident.versions[index] = spec.version;
            resident.vertices = spec.vertices;
            spec.version
        } else {
            return Err(bad_data(format!(
                "update jumps fragment {index} of graph {} from version {current} to {}",
                spec.graph_id, spec.version
            )));
        }
    };

    let epoch = spec.version as u32;
    let mut buf = state.scratch.acquire(epoch);
    wire::encode_frame_epoch(
        TAG_UPDATED,
        epoch,
        &(spec.graph_id, acked_version),
        &mut buf,
    );
    stream.write_all(&buf)?;
    stream.flush()?;
    buf.clear();
    state.scratch.release(epoch, buf);
    Ok(())
}

/// Handles one `TAG_QUERY`: resolves the resident fragment and runs the BSP
/// worker loop for it at the query's epoch, then ships the result home.
fn serve_query<S: ServiceStream>(
    stream: &S,
    job: QueryJob,
    state: &ServiceState,
) -> io::Result<()> {
    // Clone the fragment handle out and release the lock before evaluating:
    // concurrent queries must not serialize on the registry.
    let (fragment_slot, vertices) = {
        let registry = state.registry.lock().unwrap();
        let resident = registry.get(&job.graph_id).ok_or_else(|| {
            bad_data(format!(
                "graph {} is not resident in this service",
                job.graph_id
            ))
        })?;
        if job.index >= resident.workers || job.workers != resident.workers {
            return Err(bad_data(format!(
                "query names worker {}/{} but graph {} is cut into {} fragments",
                job.index, job.workers, job.graph_id, resident.workers
            )));
        }
        let slot = match &resident.fragments {
            ResidentFragments::Weighted(slots) => slots[job.index as usize]
                .clone()
                .map(FragmentHandle::Weighted),
            ResidentFragments::Labeled(slots) => slots[job.index as usize]
                .clone()
                .map(FragmentHandle::Labeled),
        };
        (slot, resident.vertices)
    };
    let Some(fragment) = fragment_slot else {
        return Err(bad_data(format!(
            "fragment {} of graph {} was never loaded",
            job.index, job.graph_id
        )));
    };

    let threads = if job.threads == 0 {
        ThreadCount::Auto
    } else {
        ThreadCount::Fixed(job.threads)
    }
    .resolve(job.workers as usize, false);
    let ck = job.checkpoint_every as usize;
    let run_id = job.run_id;
    let kill_at = job.kill_at.map(|at| at as usize);
    let seed = job.seed.clone();

    match (&fragment, &job.query) {
        (FragmentHandle::Weighted(f), Query::Sssp { .. }) => {
            let q = job.query.to_sssp().expect("matched sssp");
            answer(
                SsspProgram,
                &q,
                f,
                stream,
                state,
                run_id,
                threads,
                ck,
                kill_at,
                seed,
                |o| digest_f64_map(&o),
            )
        }
        (FragmentHandle::Weighted(f), Query::Cc) => {
            let q = grape_algo::CcQuery;
            answer(
                CcProgram,
                &q,
                f,
                stream,
                state,
                run_id,
                threads,
                ck,
                kill_at,
                seed,
                |o| digest_u64_map(&o),
            )
        }
        (FragmentHandle::Weighted(f), Query::PageRank { .. }) => {
            let q = job.query.to_pagerank().expect("matched pagerank");
            answer(
                PageRankProgram::new(vertices as usize),
                &q,
                f,
                stream,
                state,
                run_id,
                threads,
                ck,
                kill_at,
                seed,
                |o| digest_f64_map(&o),
            )
        }
        (FragmentHandle::Weighted(f), Query::Cf { .. }) => {
            let q = job.query.to_cf().expect("matched cf");
            answer(
                CfProgram::new(cf_num_users(vertices)),
                &q,
                f,
                stream,
                state,
                run_id,
                threads,
                ck,
                kill_at,
                seed,
                |o| digest_cf(&o),
            )
        }
        (FragmentHandle::Labeled(f), Query::Sim { .. }) => {
            let q = job
                .query
                .to_sim()
                .expect("matched sim")
                .map_err(|e| bad_data(format!("bad sim pattern: {e}")))?;
            answer(
                SimProgram,
                &q,
                f,
                stream,
                state,
                run_id,
                threads,
                ck,
                kill_at,
                seed,
                |o| digest_sim(&o),
            )
        }
        (FragmentHandle::Labeled(f), Query::SubIso { .. }) => {
            let q = job.query.to_subiso().expect("matched subiso");
            answer(
                SubIsoProgram,
                &q,
                f,
                stream,
                state,
                run_id,
                threads,
                ck,
                kill_at,
                seed,
                |o| digest_embeddings(&o),
            )
        }
        (FragmentHandle::Labeled(f), Query::Keyword { .. }) => {
            let q = job.query.to_keyword().expect("matched keyword");
            answer(
                KeywordProgram,
                &q,
                f,
                stream,
                state,
                run_id,
                threads,
                ck,
                kill_at,
                seed,
                |o| digest_keyword(&o),
            )
        }
        (FragmentHandle::Labeled(f), Query::Marketing { .. }) => {
            let q = job.query.to_marketing().expect("matched marketing");
            answer(
                MarketingProgram,
                &q,
                f,
                stream,
                state,
                run_id,
                threads,
                ck,
                kill_at,
                seed,
                |o| digest_prospects(&o),
            )
        }
        _ => Err(bad_data(format!(
            "query class {:?} does not run on the loaded graph family",
            job.query.class()
        ))),
    }
}

/// A resident fragment checked out of the registry for one query.
enum FragmentHandle {
    Weighted(Arc<Fragment<(), f64>>),
    Labeled(Arc<Fragment<LabeledVertex, String>>),
}

/// One query's BSP session over a borrowed resident connection — generic
/// over the program, so all eight query classes share this path. When the
/// job carries an [`IncrementalSeed`] and the program can seed under its
/// mutation profile, the program is wrapped in [`Seeded`] so PEval warm-starts
/// from the shipped converged partial; otherwise (no seed, ineligible
/// profile, or the program declines at seed time) the cold path runs
/// unchanged.
#[allow(clippy::too_many_arguments)]
fn answer<P, S>(
    program: P,
    query: &P::Query,
    fragment: &Fragment<P::VertexData, P::EdgeData>,
    stream: &S,
    state: &ServiceState,
    run_id: u32,
    threads: usize,
    checkpoint_every: usize,
    kill_at: Option<usize>,
    seed: Option<IncrementalSeed>,
    to_digest: impl Fn(P::Output) -> u64,
) -> io::Result<()>
where
    P: PieProgram,
    S: ServiceStream,
{
    match seed {
        Some(s) if program.incremental_eligible(&s.profile) => {
            let mut seeds: Vec<Option<Vec<u8>>> = vec![None; fragment.id + 1];
            seeds[fragment.id] = Some(s.snapshot);
            let seeded = Seeded::new(Arc::new(program), seeds, s.dirty, s.profile);
            answer_run(
                seeded,
                query,
                fragment,
                stream,
                state,
                run_id,
                threads,
                checkpoint_every,
                kill_at,
                to_digest,
            )
        }
        _ => answer_run(
            program,
            query,
            fragment,
            stream,
            state,
            run_id,
            threads,
            checkpoint_every,
            kill_at,
            to_digest,
        ),
    }
}

/// The BSP session body of [`answer`]: the transport runs on an alias
/// (`try_clone`) of the connection at the query's epoch; the outer serve
/// loop keeps the original for the next frame, which is safe because the
/// protocol is strictly request-response (the client sends nothing after
/// `Finish` until it has our `TAG_RESULT`).
#[allow(clippy::too_many_arguments)]
fn answer_run<P, S>(
    program: P,
    query: &P::Query,
    fragment: &Fragment<P::VertexData, P::EdgeData>,
    stream: &S,
    state: &ServiceState,
    run_id: u32,
    threads: usize,
    checkpoint_every: usize,
    kill_at: Option<usize>,
    to_digest: impl Fn(P::Output) -> u64,
) -> io::Result<()>
where
    P: PieProgram,
    S: ServiceStream,
{
    let stats = Arc::new(CommStats::new());
    let bsp = stream.try_clone_stream()?;
    let transport = FramedStreamWorker::<P::Value>::new(bsp, stats)?.with_epoch(run_id);
    let (partial, transport) = match kill_at {
        Some(at) => {
            let victim = stream.try_clone_stream()?;
            let chaos = ChaosConfig {
                kill_at: Some(at),
                ..Default::default()
            };
            let wrapped = ChaosWorkerTransport::new(
                transport,
                chaos,
                Box::new(move || {
                    let _ = victim.shutdown_both();
                }),
            );
            let partial = run_worker_with(
                &program,
                query,
                fragment,
                &wrapped,
                threads,
                checkpoint_every,
            );
            (partial, wrapped.into_inner())
        }
        None => (
            run_worker_with(
                &program,
                query,
                fragment,
                &transport,
                threads,
                checkpoint_every,
            ),
            transport,
        ),
    };
    if let Some(reason) = transport.disconnect_reason() {
        return Err(io::Error::other(format!(
            "query {run_id} torn down: {reason}"
        )));
    }
    let Some(partial) = partial else {
        return Err(io::Error::other(format!(
            "query {run_id} torn down before PEval"
        )));
    };
    // The result goes home as (digest, snapshot-encoded partial): the digest
    // for cheap verification, the snapshot so the client can restore and
    // assemble the typed answer. Snapshot before assemble — assemble
    // consumes the partial.
    let snapshot = program
        .snapshot_partial(&partial)
        .ok_or_else(|| io::Error::other("program cannot snapshot its partial result"))?;
    let digest = to_digest(program.assemble(vec![partial]));
    let mut buf = state.scratch.acquire(run_id);
    wire::encode_frame_with_epoch(TAG_RESULT, run_id, &mut buf, |out| {
        digest.encode(out);
        snapshot.encode(out);
    });
    let mut writer = stream.try_clone_stream()?;
    writer.write_all(&buf)?;
    writer.flush()?;
    buf.clear();
    state.scratch.release(run_id, buf);
    state.scratch.retire(run_id);
    Ok(())
}

// ---------------------------------------------------------------------------
// The client: Session
// ---------------------------------------------------------------------------

/// Where a session's workers live.
#[derive(Debug, Clone, Default)]
pub struct SessionConfig {
    /// Number of fragments/workers.
    pub workers: usize,
    /// Daemon endpoints; worker `i` is served by `endpoints[i % len]`, so a
    /// single daemon can host the whole fleet. Empty = resident in-process
    /// workers (the engine's `Threads`/`Inline` scheduling).
    pub endpoints: Vec<Endpoint>,
    /// Per-query engine knobs (transport read timeout, checkpoint cadence,
    /// auth token, execution mode, …). [`EngineConfig::run_id`] is stamped
    /// per query by the session and need not be set here.
    pub engine: EngineConfig,
}

impl SessionConfig {
    /// A session whose workers are resident in this process.
    pub fn in_process(workers: usize) -> SessionConfig {
        SessionConfig {
            workers,
            ..Default::default()
        }
    }

    /// A session served by remote daemons.
    pub fn remote(workers: usize, endpoints: Vec<Endpoint>) -> SessionConfig {
        SessionConfig {
            workers,
            endpoints,
            ..Default::default()
        }
    }

    /// Overrides the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> SessionConfig {
        self.engine = engine;
        self
    }
}

/// The unified entry point of the engine: `connect → load → submit`.
///
/// A session holds a graph resident — partitioned once, fragments kept by
/// in-process workers or shipped once to remote [`GrapeService`] daemons —
/// and serves a stream of typed queries over it. Each submitted query gets a
/// fresh run id (its wire epoch), its own slot table, and its own
/// [`RunStats`]; queries run concurrently on their own threads and
/// connections, so two in-flight queries of different classes never share
/// mutable state. Cloning a [`Session`] yields another handle to the same
/// resident graph (for multi-client drivers).
///
/// ```no_run
/// use grape_worker::service::{Session, SessionConfig, SessionGraph};
/// use grape_worker::GraphSpec;
/// use grape_algo::Query;
/// use grape_partition::BuiltinStrategy;
///
/// let session = Session::connect(SessionConfig::in_process(4))?;
/// let graph = SessionGraph::generate(&GraphSpec::parse("ba:3000:3:11").unwrap())?;
/// session.load(&graph, BuiltinStrategy::Hash)?;
/// let sssp = session.submit(Query::sssp(0))?;
/// let ranks = session.submit(Query::pagerank())?; // concurrent with sssp
/// println!("{:?}", sssp.join()?.result);
/// println!("{:?}", ranks.join()?.result);
/// # std::io::Result::Ok(())
/// ```
#[derive(Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
}

struct SessionInner {
    config: SessionConfig,
    graph: Mutex<Option<LoadedGraph>>,
    next_run_id: AtomicU32,
    scratch: ScratchPool,
}

/// Process-wide graph id sequence; combined with the pid so ids from
/// different client processes sharing one daemon cannot collide.
static NEXT_GRAPH_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_graph_id() -> u64 {
    ((std::process::id() as u64) << 32) | NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed)
}

/// The answer of one submitted query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The typed result, bit-identical to a cold one-shot run of the same
    /// query.
    pub result: QueryResult,
    /// Per-query statistics ([`RunStats::run_id`] names the query).
    pub stats: RunStats,
}

/// Handle to one in-flight query; [`QueryHandle::join`] blocks for its
/// outcome.
pub struct QueryHandle {
    run_id: u32,
    class: grape_algo::QueryClass,
    rx: mpsc::Receiver<io::Result<QueryOutcome>>,
}

impl QueryHandle {
    /// The query's run id (its wire epoch; also [`RunStats::run_id`]).
    pub fn run_id(&self) -> u32 {
        self.run_id
    }

    /// The submitted query's class.
    pub fn class(&self) -> grape_algo::QueryClass {
        self.class
    }

    /// Waits for the query to finish.
    pub fn join(self) -> io::Result<QueryOutcome> {
        self.rx
            .recv()
            .map_err(|_| io::Error::other("query thread vanished before reporting"))?
    }
}

impl Session {
    /// Opens a session. Remote endpoints are probed (connect + hello) so a
    /// dead daemon fails here, not on the first query.
    pub fn connect(config: SessionConfig) -> io::Result<Session> {
        if config.workers == 0 {
            return Err(bad_data("a session needs at least one worker"));
        }
        for endpoint in &config.endpoints {
            let mut stream = endpoint.connect().map_err(|e| {
                io::Error::other(format!("service endpoint {endpoint} unreachable: {e}"))
            })?;
            wire::write_frame_io_epoch(&mut stream, TAG_HELLO, 0, &config.engine.auth_token)?;
            stream.flush()?;
        }
        Ok(Session {
            inner: Arc::new(SessionInner {
                config,
                graph: Mutex::new(None),
                next_run_id: AtomicU32::new(1),
                scratch: ScratchPool::new(),
            }),
        })
    }

    /// Partitions `graph` with `strategy` and makes it resident: fragments
    /// are built once, kept for every subsequent query's slot table, and —
    /// for remote sessions — shipped once to the daemons. Loading a new
    /// graph replaces the previous one for future queries; in-flight queries
    /// keep the fragments they started with.
    pub fn load(&self, graph: &SessionGraph, strategy: BuiltinStrategy) -> io::Result<()> {
        let n = self.inner.config.workers;
        let graph_id = fresh_graph_id();
        let vertices = graph.num_vertices() as u64;
        let (fragments, delta, assignment) = match graph {
            SessionGraph::Weighted(g) => {
                let assignment = strategy.partition(g, n);
                (
                    SessionFragments::Weighted(build_fragments(g, &assignment)),
                    SessionDelta::Weighted(DeltaGraph::new(g.clone())),
                    assignment,
                )
            }
            SessionGraph::Labeled(g) => {
                let assignment = strategy.partition(g, n);
                (
                    SessionFragments::Labeled(build_fragments(g, &assignment)),
                    SessionDelta::Labeled(DeltaGraph::new(g.clone())),
                    assignment,
                )
            }
        };
        if !self.inner.config.endpoints.is_empty() {
            for index in 0..n {
                let spec = LoadSpec {
                    graph_id,
                    family: fragments.family(),
                    index: index as u32,
                    workers: n as u32,
                    vertices,
                };
                match &fragments {
                    SessionFragments::Weighted(frags) => {
                        self.inner.ship_fragment(&spec, &frags[index])?
                    }
                    SessionFragments::Labeled(frags) => {
                        self.inner.ship_fragment(&spec, &frags[index])?
                    }
                }
            }
        }
        *self.inner.graph.lock().unwrap() = Some(LoadedGraph {
            graph_id,
            vertices,
            fragments: Arc::new(fragments),
            delta,
            assignment,
            log: DeltaLog::new(),
            converged: HashMap::new(),
        });
        Ok(())
    }

    /// Applies a mutation batch to the resident graph, atomically for every
    /// subsequent query: the session's delta overlay, the resident fragments
    /// (in place, via the resolved-batch path — bit-identical to re-cutting
    /// the updated graph), and, for remote sessions, every daemon's resident
    /// fragment over versioned `TAG_UPDATE` frames. Queries already in
    /// flight keep the fragments they started with.
    ///
    /// Subsequent [`Session::submit`] calls of a query class that has already
    /// converged on this session are transparently **incremental**: they
    /// re-seed IncEval from the cached converged state and the batch's dirty
    /// set instead of re-running PEval cold, with bit-identical results.
    pub fn update(&self, batch: impl Into<SessionUpdate>) -> io::Result<UpdateReceipt> {
        self.inner.apply_session_update(batch.into())
    }

    /// Submits one query; returns immediately with a handle. The query runs
    /// on its own thread (and, for remote sessions, its own connections),
    /// concurrently with every other in-flight query.
    pub fn submit(&self, query: Query) -> io::Result<QueryHandle> {
        self.submit_inner(query, None)
    }

    /// [`Session::submit`] with a chaos schedule: worker `kill_worker`'s
    /// connection is severed upon receiving command `kill_at` — the
    /// transport-level SIGKILL of the recovery drills. Forces a checkpoint
    /// cadence of at least 1 so the query recovers; remote sessions only.
    pub fn submit_with_kill(
        &self,
        query: Query,
        kill_worker: usize,
        kill_at: usize,
    ) -> io::Result<QueryHandle> {
        if self.inner.config.endpoints.is_empty() {
            return Err(bad_data("kill drills need a remote service session"));
        }
        if kill_worker >= self.inner.config.workers {
            return Err(bad_data(format!(
                "kill drill names worker {kill_worker}, but the session has {} workers",
                self.inner.config.workers
            )));
        }
        self.submit_inner(query, Some((kill_worker, kill_at)))
    }

    /// Submits a batch with co-scheduled admission: queries of the same
    /// class form one admission wave sharing a submission thread (amortizing
    /// program setup back-to-back over the same resident fragments), and the
    /// waves of different classes run concurrently. Handles come back in
    /// submission order.
    pub fn submit_batch(&self, queries: Vec<Query>) -> io::Result<Vec<QueryHandle>> {
        type Wave = Vec<(Query, u32, mpsc::Sender<io::Result<QueryOutcome>>)>;
        let mut waves: Vec<(grape_algo::QueryClass, Wave)> = Vec::new();
        let mut handles = Vec::with_capacity(queries.len());
        for query in queries {
            let run_id = self.inner.next_run_id.fetch_add(1, Ordering::Relaxed);
            let class = query.class();
            let (tx, rx) = mpsc::channel();
            handles.push(QueryHandle { run_id, class, rx });
            match waves.iter_mut().find(|(c, _)| *c == class) {
                Some((_, wave)) => wave.push((query, run_id, tx)),
                None => waves.push((class, vec![(query, run_id, tx)])),
            }
        }
        for (_, wave) in waves {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || {
                for (query, run_id, tx) in wave {
                    let _ = tx.send(inner.run_query(&query, run_id, None));
                }
            });
        }
        Ok(handles)
    }

    fn submit_inner(&self, query: Query, kill: Option<(usize, usize)>) -> io::Result<QueryHandle> {
        let run_id = self.inner.next_run_id.fetch_add(1, Ordering::Relaxed);
        let class = query.class();
        let (tx, rx) = mpsc::channel();
        let inner = Arc::clone(&self.inner);
        std::thread::spawn(move || {
            let outcome = inner.run_query(&query, run_id, kill);
            let _ = tx.send(outcome);
        });
        Ok(QueryHandle { run_id, class, rx })
    }
}

impl SessionInner {
    /// Applies one update batch end to end; see [`Session::update`].
    fn apply_session_update(&self, batch: SessionUpdate) -> io::Result<UpdateReceipt> {
        /// Family-generic core: mutate the overlay, resolve against the
        /// assignment, and apply to every resident fragment.
        #[allow(clippy::type_complexity)]
        fn mutate<V, E>(
            delta: &mut DeltaGraph<V, E>,
            assignment: &mut PartitionAssignment,
            fragments: &[Fragment<V, E>],
            batch: &[GraphMutation<V, E>],
        ) -> io::Result<(
            Vec<VertexId>,
            MutationProfile,
            ResolvedMutations<V, E>,
            Vec<Fragment<V, E>>,
        )>
        where
            V: Wire + Clone + Default,
            E: Wire + Clone,
        {
            let receipt = delta
                .apply(batch)
                .map_err(|e| bad_data(format!("bad update batch: {e}")))?;
            let resolved =
                resolve_net_mutations(receipt.net, assignment, |v| delta.vertex_data(v).cloned());
            let updated = fragments
                .iter()
                .map(|f| f.apply_mutations(&resolved))
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| bad_data(format!("fragment update failed: {e}")))?;
            Ok((receipt.dirty, receipt.profile, resolved, updated))
        }

        let mut guard = self.graph.lock().unwrap();
        let loaded = guard
            .as_mut()
            .ok_or_else(|| bad_data("no graph loaded: call Session::load first"))?;
        let version = loaded.log.version() + 1;
        let (dirty, profile) = match (&mut loaded.delta, &batch) {
            (SessionDelta::Weighted(delta), SessionUpdate::Weighted(muts)) => {
                let SessionFragments::Weighted(frags) = &*loaded.fragments else {
                    return Err(bad_data("resident fragments lost their family"));
                };
                let (dirty, profile, resolved, updated) =
                    mutate(delta, &mut loaded.assignment, frags, muts)?;
                loaded.vertices = delta.num_vertices() as u64;
                self.ship_updates(loaded.graph_id, 0, version, loaded.vertices, &resolved)?;
                loaded.fragments = Arc::new(SessionFragments::Weighted(updated));
                (dirty, profile)
            }
            (SessionDelta::Labeled(delta), SessionUpdate::Labeled(muts)) => {
                let SessionFragments::Labeled(frags) = &*loaded.fragments else {
                    return Err(bad_data("resident fragments lost their family"));
                };
                let (dirty, profile, resolved, updated) =
                    mutate(delta, &mut loaded.assignment, frags, muts)?;
                loaded.vertices = delta.num_vertices() as u64;
                self.ship_updates(loaded.graph_id, 1, version, loaded.vertices, &resolved)?;
                loaded.fragments = Arc::new(SessionFragments::Labeled(updated));
                (dirty, profile)
            }
            _ => {
                return Err(bad_data(
                    "update family does not match the loaded graph's family",
                ))
            }
        };
        let recorded = loaded.log.record(dirty.clone(), profile);
        debug_assert_eq!(recorded, version);
        Ok(UpdateReceipt {
            version,
            dirty: dirty.len(),
            profile,
        })
    }

    /// Ships one resolved batch to every daemon-resident fragment (no-op for
    /// in-process sessions): per worker, a versioned `TAG_UPDATE` frame
    /// answered by `TAG_UPDATED`. The version fence makes retries after a
    /// lost ack idempotent on the daemon.
    fn ship_updates<V, E>(
        &self,
        graph_id: u64,
        family: u8,
        version: u64,
        vertices: u64,
        resolved: &ResolvedMutations<V, E>,
    ) -> io::Result<()>
    where
        V: Wire + Clone + Default,
        E: Wire + Clone,
    {
        if self.config.endpoints.is_empty() {
            return Ok(());
        }
        let epoch = version as u32;
        for index in 0..self.config.workers {
            let spec = UpdateSpec {
                graph_id,
                family,
                index: index as u32,
                version,
                vertices,
            };
            let endpoint = &self.config.endpoints[index % self.config.endpoints.len()];
            let mut stream = endpoint.connect()?;
            wire::write_frame_io_epoch(&mut stream, TAG_HELLO, 0, &self.config.engine.auth_token)?;
            let mut frame = self.scratch.acquire(epoch);
            wire::encode_frame_with_epoch(TAG_UPDATE, epoch, &mut frame, |out| {
                spec.encode(out);
                resolved.encode(out);
            });
            stream.write_all(&frame)?;
            stream.flush()?;
            frame.clear();
            self.scratch.release(epoch, frame);
            let (tag, _epoch, payload) =
                wire::read_frame_io_epoch(&mut stream)?.ok_or_else(|| {
                    io::Error::other(format!(
                        "daemon {endpoint} closed the connection before acking update {version}"
                    ))
                })?;
            if tag != TAG_UPDATED {
                return Err(bad_data(format!(
                    "expected TAG_UPDATED ack for fragment {index}, got tag {tag:#04x}"
                )));
            }
            let mut reader = WireReader::new(&payload);
            let (acked_graph, acked_version) = <(u64, u64)>::decode(&mut reader)
                .and_then(|pair| reader.finish().map(|()| pair))
                .map_err(|e| bad_data(e.to_string()))?;
            if acked_graph != graph_id || acked_version != version {
                return Err(bad_data(format!(
                    "daemon acked graph {acked_graph:#x} at version {acked_version}, \
                     expected {graph_id:#x} at {version}"
                )));
            }
        }
        Ok(())
    }

    /// Ships one fragment to its daemon: hello, `TAG_LOAD`, the fragment
    /// frame, then waits for the `TAG_LOADED` ack.
    fn ship_fragment<V, E>(&self, spec: &LoadSpec, fragment: &Fragment<V, E>) -> io::Result<()>
    where
        V: Wire + Clone + Default,
        E: Wire + Clone,
    {
        let endpoint = &self.config.endpoints[spec.index as usize % self.config.endpoints.len()];
        let mut stream = endpoint.connect()?;
        wire::write_frame_io_epoch(&mut stream, TAG_HELLO, 0, &self.config.engine.auth_token)?;
        wire::write_frame_io_epoch(&mut stream, TAG_LOAD, 0, spec)?;
        let mut frame = self.scratch.acquire(0);
        encode_fragment_epoch(fragment, 0, &mut frame);
        stream.write_all(&frame)?;
        stream.flush()?;
        frame.clear();
        self.scratch.release(0, frame);
        let (tag, _epoch, payload) = wire::read_frame_io_epoch(&mut stream)?.ok_or_else(|| {
            io::Error::other(format!(
                "daemon {endpoint} closed the connection before acking fragment {}",
                spec.index
            ))
        })?;
        if tag != TAG_LOADED {
            return Err(bad_data(format!(
                "expected TAG_LOADED ack for fragment {}, got tag {tag:#04x}",
                spec.index
            )));
        }
        let mut reader = WireReader::new(&payload);
        let acked = u64::decode(&mut reader).map_err(|e| bad_data(e.to_string()))?;
        reader.finish().map_err(|e| bad_data(e.to_string()))?;
        if acked != spec.graph_id {
            return Err(bad_data(format!(
                "daemon acked graph {acked:#x}, expected {:#x}",
                spec.graph_id
            )));
        }
        Ok(())
    }

    /// Runs one submitted query to completion over the resident graph.
    fn run_query(
        &self,
        query: &Query,
        run_id: u32,
        kill: Option<(usize, usize)>,
    ) -> io::Result<QueryOutcome> {
        let (graph_id, vertices, fragments, warm) = {
            let guard = self.graph.lock().unwrap();
            let loaded = guard
                .as_ref()
                .ok_or_else(|| bad_data("no graph loaded: call Session::load first"))?;
            let mut key = Vec::new();
            query.encode(&mut key);
            // Warm-start plan: the cached converged state of this exact
            // query (if any), re-based across every update applied since it
            // converged. Only built when updates actually happened — a plain
            // resubmission stays cold, so its stats (supersteps, messages)
            // reproduce exactly.
            let plan = loaded
                .converged
                .get(&key)
                .filter(|entry| entry.version < loaded.log.version())
                .and_then(|entry| {
                    loaded
                        .log
                        .since(entry.version)
                        .map(|(dirty, profile)| IncrementalPlan {
                            partials: entry.partials.clone(),
                            dirty,
                            profile,
                        })
                });
            (
                loaded.graph_id,
                loaded.vertices,
                Arc::clone(&loaded.fragments),
                WarmContext {
                    cache_key: key,
                    version: loaded.log.version(),
                    plan,
                },
            )
        };
        let warm = &warm;
        match (&*fragments, query) {
            (SessionFragments::Weighted(frags), Query::Sssp { source }) => self.run_class(
                SsspProgram,
                &grape_algo::SsspQuery::new(*source),
                query,
                frags,
                graph_id,
                run_id,
                warm,
                kill,
                QueryResult::Distances,
            ),
            (SessionFragments::Weighted(frags), Query::Cc) => self.run_class(
                CcProgram,
                &grape_algo::CcQuery,
                query,
                frags,
                graph_id,
                run_id,
                warm,
                kill,
                QueryResult::Components,
            ),
            (SessionFragments::Weighted(frags), Query::PageRank { .. }) => self.run_class(
                PageRankProgram::new(vertices as usize),
                &query.to_pagerank().expect("variant checked"),
                query,
                frags,
                graph_id,
                run_id,
                warm,
                kill,
                QueryResult::Ranks,
            ),
            (SessionFragments::Weighted(frags), Query::Cf { .. }) => self.run_class(
                CfProgram::new(cf_num_users(vertices)),
                &query.to_cf().expect("variant checked"),
                query,
                frags,
                graph_id,
                run_id,
                warm,
                kill,
                QueryResult::Model,
            ),
            (SessionFragments::Labeled(frags), Query::Sim { .. }) => {
                let typed = query
                    .to_sim()
                    .expect("variant checked")
                    .map_err(|e| bad_data(format!("invalid simulation pattern: {e}")))?;
                self.run_class(
                    SimProgram,
                    &typed,
                    query,
                    frags,
                    graph_id,
                    run_id,
                    warm,
                    kill,
                    QueryResult::Matches,
                )
            }
            (SessionFragments::Labeled(frags), Query::SubIso { .. }) => self.run_class(
                SubIsoProgram,
                &query.to_subiso().expect("variant checked"),
                query,
                frags,
                graph_id,
                run_id,
                warm,
                kill,
                QueryResult::Embeddings,
            ),
            (SessionFragments::Labeled(frags), Query::Keyword { .. }) => self.run_class(
                KeywordProgram,
                &query.to_keyword().expect("variant checked"),
                query,
                frags,
                graph_id,
                run_id,
                warm,
                kill,
                QueryResult::Answers,
            ),
            (SessionFragments::Labeled(frags), Query::Marketing { .. }) => self.run_class(
                MarketingProgram,
                &query.to_marketing().expect("variant checked"),
                query,
                frags,
                graph_id,
                run_id,
                warm,
                kill,
                QueryResult::Prospects,
            ),
            (fragments, query) => Err(bad_data(format!(
                "query class {:?} does not run on the loaded graph family ({})",
                query.class(),
                match fragments {
                    SessionFragments::Weighted(_) => "weighted",
                    SessionFragments::Labeled(_) => "labeled",
                }
            ))),
        }
    }

    /// Drives one typed query class: in-process over the resident fragments,
    /// or as a coordinator over per-query daemon connections. With a warm
    /// plan whose profile the program can seed under, the run is
    /// incremental — PEval warm-starts from the cached converged partials
    /// and the dirty set of the updates applied since; either way the
    /// converged partials of this run are cached for the next submission.
    #[allow(clippy::too_many_arguments)]
    fn run_class<P>(
        &self,
        program: P,
        typed: &P::Query,
        wire_query: &Query,
        fragments: &[Fragment<P::VertexData, P::EdgeData>],
        graph_id: u64,
        run_id: u32,
        warm: &WarmContext,
        kill: Option<(usize, usize)>,
        wrap: impl Fn(P::Output) -> QueryResult,
    ) -> io::Result<QueryOutcome>
    where
        P: PieProgram,
        P::VertexData: Wire + Clone + Default,
        P::EdgeData: Wire + Clone,
    {
        let mut config = self.config.engine.clone();
        config.run_id = run_id;
        if kill.is_some() && config.checkpoint_every == 0 {
            config.checkpoint_every = 1;
        }
        // Only seed when the program can replay this update shape from its
        // old fixpoint; everything else runs cold (and still refreshes the
        // converged cache).
        let plan = warm
            .plan
            .as_ref()
            .filter(|p| program.incremental_eligible(&p.profile));

        if self.config.endpoints.is_empty() {
            if kill.is_some() {
                return Err(bad_data("kill drills need a remote service session"));
            }
            config.capture_converged = true;
            let engine = GrapeEngine::new(program).with_config(config);
            let result = match plan {
                Some(p) => engine.run_incremental(
                    typed,
                    fragments,
                    p.partials.iter().cloned().map(Some).collect(),
                    &p.dirty,
                    &p.profile,
                ),
                None => engine.run(typed, fragments),
            }
            .map_err(|e| io::Error::other(e.to_string()))?;
            if let Some(partials) = result.converged {
                self.store_converged(graph_id, warm, partials);
            }
            return Ok(QueryOutcome {
                result: wrap(result.output),
                stats: result.stats,
            });
        }

        let n = fragments.len();
        let open = |worker: usize, epoch: u32, kill_at: Option<u32>| -> io::Result<ServiceSocket> {
            let endpoint = &self.config.endpoints[worker % self.config.endpoints.len()];
            let mut stream = endpoint.connect()?;
            wire::write_frame_io_epoch(&mut stream, TAG_HELLO, 0, &config.auth_token)?;
            let job = QueryJob {
                graph_id,
                index: worker as u32,
                workers: n as u32,
                run_id: epoch,
                threads: match config.threads_per_worker {
                    ThreadCount::Auto => 0,
                    ThreadCount::Fixed(t) => t,
                },
                checkpoint_every: config.checkpoint_every as u32,
                query: wire_query.clone(),
                kill_at,
                // The seed rides on the job itself, so a worker replaced
                // mid-run re-enters with the same warm start.
                seed: plan.and_then(|p| {
                    p.partials.get(worker).map(|snapshot| IncrementalSeed {
                        snapshot: snapshot.clone(),
                        dirty: p.dirty.clone(),
                        profile: p.profile,
                    })
                }),
            };
            let mut frame = self.scratch.acquire(run_id);
            wire::encode_frame_epoch(TAG_QUERY, epoch, &job, &mut frame);
            stream.write_all(&frame)?;
            stream.flush()?;
            frame.clear();
            self.scratch.release(run_id, frame);
            Ok(stream)
        };

        let mut streams = Vec::with_capacity(n);
        for worker in 0..n {
            let kill_at = kill.and_then(|(w, at)| (w == worker).then_some(at as u32));
            streams.push(open(worker, run_id, kill_at)?);
        }
        let comm_stats = Arc::new(CommStats::new());
        let transport = FramedStreamCoord::<P::Value>::new_at_epoch(streams, comm_stats, run_id)?
            .with_read_timeout(config.read_timeout);

        let engine = GrapeEngine::new(program).with_config(config.clone());
        let stats = if config.checkpoint_every > 0 {
            // Recovery glue for the service path: a fresh connection to the
            // same daemon re-enters the query at the bumped epoch; the
            // resident fragment is *not* re-shipped.
            let mut recover = |worker: usize, epoch: u32| -> Result<(), String> {
                let stream = open(worker, epoch, None)
                    .map_err(|e| format!("reconnect worker {worker}: {e}"))?;
                transport
                    .replace_worker(worker, stream, epoch)
                    .map_err(|e| format!("replace worker {worker}: {e}"))
            };
            engine.run_coordinator_recoverable(fragments, &transport, &mut recover)
        } else {
            engine.run_coordinator(fragments, &transport)
        }
        .map_err(|e| io::Error::other(e.to_string()))?;

        // Collect one TAG_RESULT per worker (any order).
        let mut results: Vec<Option<(u64, Vec<u8>)>> = (0..n).map(|_| None).collect();
        while results.iter().any(Option::is_none) {
            let (from, tag, payload) = transport.recv_oob_blocking().ok_or_else(|| {
                io::Error::other("service connection closed before every worker reported a result")
            })?;
            if tag != TAG_RESULT {
                return Err(bad_data(format!(
                    "expected TAG_RESULT from worker {from}, got tag {tag:#04x}"
                )));
            }
            let mut reader = WireReader::new(&payload);
            let decoded = u64::decode(&mut reader)
                .and_then(|digest| Vec::<u8>::decode(&mut reader).map(|snap| (digest, snap)))
                .and_then(|pair| reader.finish().map(|()| pair))
                .map_err(|e| bad_data(format!("bad result frame: {e}")))?;
            results[from] = Some(decoded);
        }

        let mut partials = Vec::with_capacity(n);
        let mut snapshots = Vec::with_capacity(n);
        for (worker, slot) in results.into_iter().enumerate() {
            let (_digest, snapshot) = slot.expect("all slots filled above");
            let partial = engine.program().restore_partial(&snapshot).ok_or_else(|| {
                bad_data(format!(
                    "worker {worker} returned an undecodable result snapshot"
                ))
            })?;
            partials.push(partial);
            snapshots.push(snapshot);
        }
        let output = engine.program().assemble(partials);
        // The result snapshots *are* the converged partials — cache them for
        // the next submission of this query.
        self.store_converged(graph_id, warm, snapshots);
        self.scratch.retire(run_id);
        Ok(QueryOutcome {
            result: wrap(output),
            stats,
        })
    }

    /// Caches a run's converged partials under its query key, stamped with
    /// the graph version the run started at — so later submissions re-seed
    /// across exactly the updates applied since. Never replaces a fresher
    /// entry (a concurrent query may have finished on newer fragments), and
    /// drops the write if the graph was replaced mid-run.
    fn store_converged(&self, graph_id: u64, warm: &WarmContext, partials: Vec<Vec<u8>>) {
        let mut guard = self.graph.lock().unwrap();
        let Some(loaded) = guard.as_mut() else { return };
        if loaded.graph_id != graph_id {
            return;
        }
        match loaded.converged.get(&warm.cache_key) {
            Some(existing) if existing.version > warm.version => {}
            _ => {
                loaded.converged.insert(
                    warm.cache_key.clone(),
                    ConvergedState {
                        version: warm.version,
                        partials,
                    },
                );
            }
        }
    }
}

/// Context a query carries for the converged-state cache: its cache key, the
/// graph version its fragments correspond to, and — on a cache hit — the
/// warm-start plan.
struct WarmContext {
    /// The query's wire encoding: one cache slot per distinct query.
    cache_key: Vec<u8>,
    /// Graph version of the fragments this query runs on.
    version: u64,
    /// Cached converged state re-based to this version, if any.
    plan: Option<IncrementalPlan>,
}

/// A warm-start plan: the cached per-fragment converged partials plus the
/// merged dirty set and profile of every update applied since they converged.
struct IncrementalPlan {
    partials: Vec<Vec<u8>>,
    dirty: Vec<VertexId>,
    profile: MutationProfile,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: &T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let mut reader = WireReader::new(&buf);
        let back = T::decode(&mut reader).expect("decodes");
        reader.finish().expect("no trailing bytes");
        assert_eq!(&back, value);
    }

    #[test]
    fn load_spec_wire_roundtrip() {
        roundtrip(&LoadSpec {
            graph_id: 0xdead_beef_0000_0001,
            family: 1,
            index: 3,
            workers: 4,
            vertices: 5000,
        });
    }

    #[test]
    fn query_job_wire_roundtrip() {
        roundtrip(&QueryJob {
            graph_id: 42,
            index: 1,
            workers: 3,
            run_id: 17,
            threads: 2,
            checkpoint_every: 1,
            query: Query::sssp(7),
            kill_at: Some(4),
            seed: None,
        });
        roundtrip(&QueryJob {
            graph_id: 42,
            index: 0,
            workers: 1,
            run_id: 1,
            threads: 0,
            checkpoint_every: 0,
            query: Query::canonical_keyword(),
            kill_at: None,
            seed: Some(IncrementalSeed {
                snapshot: vec![1, 2, 3, 250],
                dirty: vec![7, 9],
                profile: MutationProfile {
                    edge_inserts: 2,
                    ..Default::default()
                },
            }),
        });
    }

    #[test]
    fn update_spec_wire_roundtrip() {
        roundtrip(&UpdateSpec {
            graph_id: 0xfeed_0000_0000_0007,
            family: 0,
            index: 2,
            version: 5,
            vertices: 1234,
        });
    }

    #[test]
    fn endpoint_parse_and_display() {
        let tcp = Endpoint::parse("127.0.0.1:4817");
        assert_eq!(tcp, Endpoint::Tcp("127.0.0.1:4817".into()));
        assert_eq!(tcp.to_string(), "127.0.0.1:4817");
        #[cfg(unix)]
        {
            let uds = Endpoint::parse("uds:/tmp/grape.sock");
            assert_eq!(uds, Endpoint::Uds("/tmp/grape.sock".into()));
            assert_eq!(uds.to_string(), "uds:/tmp/grape.sock");
        }
    }

    #[test]
    fn graph_ids_are_process_unique() {
        let a = fresh_graph_id();
        let b = fresh_graph_id();
        assert_ne!(a, b);
        assert_eq!(a >> 32, std::process::id() as u64);
    }
}
