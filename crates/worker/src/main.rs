//! The `grape-worker` binary: multi-process GRAPE over the framed wire
//! protocol.
//!
//! Coordinator (binds, ships job specs + fragments, drives the fixpoint):
//!
//! ```text
//! grape-worker serve --listen 127.0.0.1:4817 --workers 4 \
//!     --algo sssp --graph road:64x64:7 --strategy hash --source 0 \
//!     [--spawn] [--verify] [--chaos KILL_AT]
//! ```
//!
//! Worker (connects, receives its fragment on the wire, evaluates):
//!
//! ```text
//! grape-worker connect 127.0.0.1:4817 [--timeout SECS] [--kill-at N]
//! grape-worker connect-uds /tmp/grape.sock        # Unix-domain variant
//! ```
//!
//! `--spawn` makes the coordinator fork the workers itself (k child
//! processes of this same binary) — the one-command demo. `--verify` reruns
//! the job in-process over the framed channel transport and asserts the
//! digests and superstep count match bit for bit. `--chaos KILL_AT` (requires
//! `--spawn`) is the fault drill: worker 0 SIGKILLs itself upon receiving its
//! KILL_AT-th command, and the coordinator recovers — respawn, re-ship,
//! replay — with `--verify` still holding.

use grape_core::EngineConfig;
use grape_worker::{
    kill_self, run_coordinator_connections_recoverable, run_coordinator_connections_with,
    run_local_framed, run_worker_connection_with, GraphSpec, JobSpec, KillPlan, UdsPathGuard,
};
use std::net::{TcpListener, TcpStream};
use std::process::{Command, Stdio};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  grape-worker serve --listen ADDR [--uds PATH] --workers K --algo \
         sssp|cc|pagerank\n      --graph road:WxH:SEED|ba:N:M:SEED [--strategy NAME] \
         [--source V] [--threads T] [--timeout SECS] [--checkpoints] [--spawn] [--verify]\n      \
         [--chaos KILL_AT]   (requires --spawn: worker 0 SIGKILLs itself, run recovers)\n  \
         grape-worker connect ADDR [--timeout SECS] [--kill-at N]\n  grape-worker connect-uds \
         PATH [--timeout SECS] [--kill-at N]"
    );
    std::process::exit(2);
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The worker-side knobs shared by `connect` and `connect-uds`.
fn worker_knobs(args: &[String]) -> (Option<Duration>, Option<KillPlan>) {
    let timeout = arg_value(args, "--timeout")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs);
    let kill: Option<KillPlan> = arg_value(args, "--kill-at")
        .and_then(|v| v.parse::<usize>().ok())
        .map(|at| (at, Box::new(kill_self) as Box<dyn FnMut() + Send>));
    (timeout, kill)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let result = match mode {
        Some("connect") => {
            let addr = args.get(1).cloned().unwrap_or_else(|| usage());
            let (timeout, kill) = worker_knobs(&args[1..]);
            TcpStream::connect(&addr)
                .and_then(|s| run_worker_connection_with(s, timeout, kill))
                .map(|digest| println!("worker done, digest {digest:#018x}"))
        }
        #[cfg(unix)]
        Some("connect-uds") => {
            let path = args.get(1).cloned().unwrap_or_else(|| usage());
            let (timeout, kill) = worker_knobs(&args[1..]);
            std::os::unix::net::UnixStream::connect(&path)
                .and_then(|s| run_worker_connection_with(s, timeout, kill))
                .map(|digest| println!("worker done, digest {digest:#018x}"))
        }
        Some("serve") => serve(&args[1..]),
        _ => usage(),
    };
    if let Err(err) = result {
        eprintln!("grape-worker: {err}");
        std::process::exit(1);
    }
}

fn serve(args: &[String]) -> std::io::Result<()> {
    let workers: u32 = arg_value(args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());
    let algo = arg_value(args, "--algo").unwrap_or_else(|| usage());
    let graph = GraphSpec::parse(&arg_value(args, "--graph").unwrap_or_else(|| usage()))
        .unwrap_or_else(|e| {
            eprintln!("grape-worker: {e}");
            std::process::exit(2);
        });
    let spawn = args.iter().any(|a| a == "--spawn");
    let verify = args.iter().any(|a| a == "--verify");
    let chaos = arg_value(args, "--chaos").and_then(|v| v.parse::<usize>().ok());
    if chaos.is_some() && !spawn {
        eprintln!("grape-worker: --chaos requires --spawn (the coordinator respawns the victim)");
        std::process::exit(2);
    }
    let job = JobSpec {
        algo,
        graph,
        strategy: arg_value(args, "--strategy").unwrap_or_else(|| "hash".into()),
        workers,
        index: 0,
        source: arg_value(args, "--source")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        threads: arg_value(args, "--threads")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        vertices: 0, // filled per connection by the coordinator
        checkpoints: chaos.is_some() || args.iter().any(|a| a == "--checkpoints"),
    };
    let timeout_secs = arg_value(args, "--timeout").and_then(|v| v.parse::<u64>().ok());
    let config = EngineConfig {
        read_timeout: Some(
            timeout_secs
                .map(Duration::from_secs)
                .unwrap_or(grape_core::transport::DEFAULT_READ_TIMEOUT),
        ),
        ..Default::default()
    };
    // Both endpoints run the same timeout: the flag is forwarded to spawned
    // workers so a vanished coordinator is detected symmetrically.
    let timeout_args: Vec<String> = timeout_secs
        .map(|s| vec!["--timeout".into(), s.to_string()])
        .unwrap_or_default();

    let outcome = if let Some(path) = arg_value(args, "--uds") {
        #[cfg(unix)]
        {
            // The guard unlinks a stale socket from a dead coordinator and
            // removes ours again on every exit path, including panics.
            let guard = UdsPathGuard::claim(&path)?;
            let listener = std::os::unix::net::UnixListener::bind(guard.path())?;
            eprintln!("coordinator listening on {path}");
            let mut connect_args = vec!["connect-uds".to_string(), path.clone()];
            connect_args.extend(timeout_args.iter().cloned());
            let children = maybe_spawn(spawn, workers, chaos, &connect_args)?;
            let streams = (0..workers)
                .map(|_| listener.accept().map(|(s, _)| s))
                .collect::<std::io::Result<Vec<_>>>()?;
            let replacements = std::cell::RefCell::new(Vec::new());
            let outcome = match chaos {
                None => run_coordinator_connections_with(&job, streams, &config)?,
                Some(_) => {
                    let mut respawn = |_worker: usize| {
                        replacements.borrow_mut().push(spawn_worker(&connect_args)?);
                        listener.accept().map(|(s, _)| s)
                    };
                    run_coordinator_connections_recoverable(&job, streams, &config, &mut respawn)?
                }
            };
            reap(children, chaos.is_some())?;
            reap(replacements.into_inner(), false)?;
            outcome
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(std::io::Error::other("--uds requires a unix platform"));
        }
    } else {
        let listen = arg_value(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
        let listener = TcpListener::bind(&listen)?;
        let addr = listener.local_addr()?.to_string();
        eprintln!("coordinator listening on {addr}");
        let mut connect_args = vec!["connect".to_string(), addr.clone()];
        connect_args.extend(timeout_args.iter().cloned());
        let children = maybe_spawn(spawn, workers, chaos, &connect_args)?;
        let streams = (0..workers)
            .map(|_| listener.accept().map(|(s, _)| s))
            .collect::<std::io::Result<Vec<_>>>()?;
        let replacements = std::cell::RefCell::new(Vec::new());
        let outcome = match chaos {
            None => run_coordinator_connections_with(&job, streams, &config)?,
            Some(_) => {
                let mut respawn = |_worker: usize| {
                    replacements.borrow_mut().push(spawn_worker(&connect_args)?);
                    listener.accept().map(|(s, _)| s)
                };
                run_coordinator_connections_recoverable(&job, streams, &config, &mut respawn)?
            }
        };
        reap(children, chaos.is_some())?;
        reap(replacements.into_inner(), false)?;
        outcome
    };

    println!(
        "{}: {} supersteps, {} messages, {} wire bytes, {} recoveries, wall {:.2}ms",
        job.algo,
        outcome.stats.supersteps,
        outcome.stats.messages,
        outcome.stats.bytes,
        outcome.stats.recoveries,
        outcome.stats.wall_time.as_secs_f64() * 1e3
    );
    for (worker, digest) in outcome.digests.iter().enumerate() {
        println!("  worker {worker}: digest {digest:#018x}");
    }

    if verify {
        // Recovery replays a superstep, so message counts legitimately
        // exceed the reference after a kill; digests and superstep count
        // must still match bit for bit.
        let mut reference_job = job.clone();
        reference_job.checkpoints = job.checkpoints || chaos.is_some();
        let reference = run_local_framed(&reference_job)?;
        let messages_diverge =
            chaos.is_none() && reference.stats.messages != outcome.stats.messages;
        if reference.digests != outcome.digests
            || reference.stats.supersteps != outcome.stats.supersteps
            || messages_diverge
        {
            return Err(std::io::Error::other(format!(
                "multi-process run diverged from the in-process reference: \
                 digests {:?} vs {:?}, supersteps {} vs {}, messages {} vs {}",
                outcome.digests,
                reference.digests,
                outcome.stats.supersteps,
                reference.stats.supersteps,
                outcome.stats.messages,
                reference.stats.messages
            )));
        }
        println!("verified: bit-identical to the in-process framed reference");
    }
    Ok(())
}

/// Spawns one worker child of this binary with `connect_args`.
fn spawn_worker(connect_args: &[String]) -> std::io::Result<std::process::Child> {
    let exe = std::env::current_exe()?;
    Command::new(&exe)
        .args(connect_args)
        .stdout(Stdio::null())
        .spawn()
}

/// Spawns `workers` copies of this binary in worker mode when `spawn` is
/// set. Under `--chaos KILL_AT`, worker 0 gets the kill schedule.
fn maybe_spawn(
    spawn: bool,
    workers: u32,
    chaos: Option<usize>,
    connect_args: &[String],
) -> std::io::Result<Vec<std::process::Child>> {
    if !spawn {
        return Ok(Vec::new());
    }
    (0..workers)
        .map(|index| {
            let mut args = connect_args.to_vec();
            if index == 0 {
                if let Some(kill_at) = chaos {
                    args.extend(["--kill-at".to_string(), kill_at.to_string()]);
                }
            }
            spawn_worker(&args)
        })
        .collect()
}

/// Waits for the spawned workers. Under chaos one child was SIGKILLed on
/// purpose; exactly that many non-success exits are tolerated.
fn reap(children: Vec<std::process::Child>, chaos: bool) -> std::io::Result<()> {
    let mut failures = 0usize;
    for mut child in children {
        let status = child.wait()?;
        if !status.success() {
            failures += 1;
            if !chaos || failures > 1 {
                return Err(std::io::Error::other(format!(
                    "worker process exited with {status}"
                )));
            }
        }
    }
    Ok(())
}
