//! The `grape-worker` binary: multi-process GRAPE over the framed wire
//! protocol.
//!
//! Coordinator (binds, ships job specs, drives the fixpoint):
//!
//! ```text
//! grape-worker serve --listen 127.0.0.1:4817 --workers 4 \
//!     --algo sssp --graph road:64x64:7 --strategy hash --source 0 [--spawn] [--verify]
//! ```
//!
//! Worker (connects, rebuilds its fragment, evaluates):
//!
//! ```text
//! grape-worker connect 127.0.0.1:4817
//! grape-worker connect-uds /tmp/grape.sock        # Unix-domain variant
//! ```
//!
//! `--spawn` makes the coordinator fork the workers itself (k child
//! processes of this same binary) — the one-command demo. `--verify` reruns
//! the job in-process over the framed channel transport and asserts the
//! digests, superstep count and message count match bit for bit.

use grape_worker::{
    run_coordinator_connections_with, run_local_framed, run_worker_connection, GraphSpec, JobSpec,
};
use std::net::{TcpListener, TcpStream};
use std::process::{Command, Stdio};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  grape-worker serve --listen ADDR [--uds PATH] --workers K --algo \
         sssp|cc|pagerank\n      --graph road:WxH:SEED|ba:N:M:SEED [--strategy NAME] \
         [--source V] [--threads T] [--timeout SECS] [--spawn] [--verify]\n  grape-worker \
         connect ADDR\n  grape-worker connect-uds PATH"
    );
    std::process::exit(2);
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let result = match mode {
        Some("connect") => {
            let addr = args.get(1).cloned().unwrap_or_else(|| usage());
            TcpStream::connect(&addr)
                .and_then(run_worker_connection)
                .map(|digest| println!("worker done, digest {digest:#018x}"))
        }
        #[cfg(unix)]
        Some("connect-uds") => {
            let path = args.get(1).cloned().unwrap_or_else(|| usage());
            std::os::unix::net::UnixStream::connect(&path)
                .and_then(run_worker_connection)
                .map(|digest| println!("worker done, digest {digest:#018x}"))
        }
        Some("serve") => serve(&args[1..]),
        _ => usage(),
    };
    if let Err(err) = result {
        eprintln!("grape-worker: {err}");
        std::process::exit(1);
    }
}

fn serve(args: &[String]) -> std::io::Result<()> {
    let workers: u32 = arg_value(args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());
    let algo = arg_value(args, "--algo").unwrap_or_else(|| usage());
    let graph = GraphSpec::parse(&arg_value(args, "--graph").unwrap_or_else(|| usage()))
        .unwrap_or_else(|e| {
            eprintln!("grape-worker: {e}");
            std::process::exit(2);
        });
    let job = JobSpec {
        algo,
        graph,
        strategy: arg_value(args, "--strategy").unwrap_or_else(|| "hash".into()),
        workers,
        index: 0,
        source: arg_value(args, "--source")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        threads: arg_value(args, "--threads")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
    };
    let read_timeout = arg_value(args, "--timeout")
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_secs)
        .unwrap_or(grape_core::transport::DEFAULT_READ_TIMEOUT);
    let spawn = args.iter().any(|a| a == "--spawn");
    let verify = args.iter().any(|a| a == "--verify");

    let outcome = if let Some(path) = arg_value(args, "--uds") {
        #[cfg(unix)]
        {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)?;
            eprintln!("coordinator listening on {path}");
            let children = maybe_spawn(spawn, workers, &["connect-uds", &path])?;
            let streams = (0..workers)
                .map(|_| listener.accept().map(|(s, _)| s))
                .collect::<std::io::Result<Vec<_>>>()?;
            let outcome = run_coordinator_connections_with(&job, streams, read_timeout)?;
            reap(children)?;
            let _ = std::fs::remove_file(&path);
            outcome
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(std::io::Error::other("--uds requires a unix platform"));
        }
    } else {
        let listen = arg_value(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
        let listener = TcpListener::bind(&listen)?;
        let addr = listener.local_addr()?.to_string();
        eprintln!("coordinator listening on {addr}");
        let children = maybe_spawn(spawn, workers, &["connect", &addr])?;
        let streams = (0..workers)
            .map(|_| listener.accept().map(|(s, _)| s))
            .collect::<std::io::Result<Vec<_>>>()?;
        let outcome = run_coordinator_connections_with(&job, streams, read_timeout)?;
        reap(children)?;
        outcome
    };

    println!(
        "{}: {} supersteps, {} messages, {} wire bytes, wall {:.2}ms",
        job.algo,
        outcome.stats.supersteps,
        outcome.stats.messages,
        outcome.stats.bytes,
        outcome.stats.wall_time.as_secs_f64() * 1e3
    );
    for (worker, digest) in outcome.digests.iter().enumerate() {
        println!("  worker {worker}: digest {digest:#018x}");
    }

    if verify {
        let reference = run_local_framed(&job)?;
        if reference.digests != outcome.digests
            || reference.stats.supersteps != outcome.stats.supersteps
            || reference.stats.messages != outcome.stats.messages
        {
            return Err(std::io::Error::other(format!(
                "multi-process run diverged from the in-process reference: \
                 digests {:?} vs {:?}, supersteps {} vs {}, messages {} vs {}",
                outcome.digests,
                reference.digests,
                outcome.stats.supersteps,
                reference.stats.supersteps,
                outcome.stats.messages,
                reference.stats.messages
            )));
        }
        println!("verified: bit-identical to the in-process framed reference");
    }
    Ok(())
}

/// Spawns `workers` copies of this binary in worker mode when `spawn` is
/// set.
fn maybe_spawn(
    spawn: bool,
    workers: u32,
    connect_args: &[&str],
) -> std::io::Result<Vec<std::process::Child>> {
    if !spawn {
        return Ok(Vec::new());
    }
    let exe = std::env::current_exe()?;
    (0..workers)
        .map(|_| {
            Command::new(&exe)
                .args(connect_args)
                .stdout(Stdio::null())
                .spawn()
        })
        .collect()
}

fn reap(children: Vec<std::process::Child>) -> std::io::Result<()> {
    for mut child in children {
        let status = child.wait()?;
        if !status.success() {
            return Err(std::io::Error::other(format!(
                "worker process exited with {status}"
            )));
        }
    }
    Ok(())
}
