//! The `grape-worker` binary: multi-process GRAPE over the framed wire
//! protocol.
//!
//! Coordinator (binds, ships job specs + fragments, drives the fixpoint):
//!
//! ```text
//! grape-worker serve --listen 127.0.0.1:4817 --workers 4 \
//!     --algo sssp --graph road:64x64:7 --strategy hash --source 0 \
//!     [--checkpoint-every K] [--token SECRET] [--spawn] [--verify] \
//!     [--chaos KILL_AT[,KILL_AT2,...]]
//! ```
//!
//! Worker (connects, receives its fragment on the wire, evaluates):
//!
//! ```text
//! grape-worker connect 127.0.0.1:4817 [--timeout SECS] [--token SECRET] [--kill-at N]
//! grape-worker connect-uds /tmp/grape.sock        # Unix-domain variant
//! ```
//!
//! Algorithms: `sssp`, `cc`, `pagerank`, `cf` on weighted graphs
//! (`road:WxH:SEED`, `ba:N:M:SEED`); `sim`, `subiso`, `keyword`, `marketing`
//! on labeled social graphs (`social:PERSONS:PRODUCTS:SEED`).
//!
//! `--spawn` makes the coordinator fork the workers itself (k child
//! processes of this same binary) — the one-command demo. `--verify` reruns
//! the job in-process over the framed channel transport and asserts the
//! digests and superstep count match bit for bit. `--chaos K[,K2,...]`
//! (requires `--spawn`) is the fault drill: worker i SIGKILLs itself upon
//! receiving its Ki-th command — several victims exercise concurrent
//! failure — and the coordinator recovers every one (respawn, re-ship,
//! replay) with `--verify` still holding. `--token` makes the coordinator
//! require (and the spawned workers present) the given auth token in the
//! session handshake.
//!
//! Resident query-service daemon (fragments loaded once, then an unbounded
//! stream of queries served over them — connect with
//! `grape_worker::Session`):
//!
//! ```text
//! grape-worker daemon --listen 127.0.0.1:4817 [--token SECRET]
//! grape-worker daemon --uds /tmp/grape.sock   [--token SECRET]
//! ```

use grape_core::EngineConfig;
use grape_worker::{
    kill_self, run_coordinator_connections_recoverable, run_coordinator_connections_with,
    run_local_framed, run_worker_connection_opts, GrapeService, GraphSpec, JobSpec, ServiceOptions,
    UdsPathGuard, WorkerOptions,
};
use std::net::{TcpListener, TcpStream};
use std::process::{Command, Stdio};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  grape-worker serve --listen ADDR [--uds PATH] --workers K\n      --algo \
         sssp|cc|pagerank|cf|sim|subiso|keyword|marketing\n      --graph \
         road:WxH:SEED|ba:N:M:SEED|social:P:R:SEED [--strategy NAME]\n      [--source V] \
         [--threads T] [--timeout SECS] [--checkpoint-every K] [--token SECRET]\n      [--spawn] \
         [--verify] [--chaos KILL_AT[,KILL_AT2,...]]\n        (--chaos requires --spawn: worker i \
         SIGKILLs itself at its i-th schedule entry, run recovers)\n  grape-worker connect ADDR \
         [--timeout SECS] [--token SECRET] [--kill-at N]\n  grape-worker connect-uds PATH \
         [--timeout SECS] [--token SECRET] [--kill-at N]\n  grape-worker daemon [--listen ADDR | \
         --uds PATH] [--token SECRET] [--handshake-timeout SECS]\n        (resident query service: \
         load fragments once, serve concurrent queries; see grape_worker::Session)"
    );
    std::process::exit(2);
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The worker-side knobs shared by `connect` and `connect-uds`.
fn worker_knobs(args: &[String]) -> WorkerOptions {
    let mut options = WorkerOptions {
        read_timeout: arg_value(args, "--timeout")
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_secs),
        token: arg_value(args, "--token"),
        ..Default::default()
    };
    if let Some(at) = arg_value(args, "--kill-at").and_then(|v| v.parse::<usize>().ok()) {
        options.chaos.kill_at = Some(at);
        options.on_kill = Some(Box::new(kill_self));
    }
    options
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let result = match mode {
        Some("connect") => {
            let addr = args.get(1).cloned().unwrap_or_else(|| usage());
            let options = worker_knobs(&args[1..]);
            TcpStream::connect(&addr)
                .and_then(|s| run_worker_connection_opts(s, options))
                .map(|digest| println!("worker done, digest {digest:#018x}"))
        }
        #[cfg(unix)]
        Some("connect-uds") => {
            let path = args.get(1).cloned().unwrap_or_else(|| usage());
            let options = worker_knobs(&args[1..]);
            std::os::unix::net::UnixStream::connect(&path)
                .and_then(|s| run_worker_connection_opts(s, options))
                .map(|digest| println!("worker done, digest {digest:#018x}"))
        }
        Some("serve") => serve(&args[1..]),
        Some("daemon") => daemon(&args[1..]),
        _ => usage(),
    };
    if let Err(err) = result {
        eprintln!("grape-worker: {err}");
        std::process::exit(1);
    }
}

/// Runs the resident query-service daemon until killed.
fn daemon(args: &[String]) -> std::io::Result<()> {
    let options = ServiceOptions {
        token: arg_value(args, "--token"),
        handshake_timeout: arg_value(args, "--handshake-timeout")
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_secs),
    };
    let service = if let Some(path) = arg_value(args, "--uds") {
        #[cfg(unix)]
        {
            GrapeService::bind_uds(&path, options)?
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(std::io::Error::other("--uds requires a unix platform"));
        }
    } else {
        let listen = arg_value(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
        GrapeService::bind(&listen, options)?
    };
    eprintln!("service listening on {}", service.endpoint()?);
    service.serve()
}

fn serve(args: &[String]) -> std::io::Result<()> {
    let workers: u32 = arg_value(args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());
    let algo = arg_value(args, "--algo").unwrap_or_else(|| usage());
    let graph = GraphSpec::parse(&arg_value(args, "--graph").unwrap_or_else(|| usage()))
        .unwrap_or_else(|e| {
            eprintln!("grape-worker: {e}");
            std::process::exit(2);
        });
    let spawn = args.iter().any(|a| a == "--spawn");
    let verify = args.iter().any(|a| a == "--verify");
    let token = arg_value(args, "--token");
    // The kill schedule: entry i is worker i's --kill-at. Several entries
    // exercise concurrent (same-run, possibly same-superstep) failures.
    let chaos: Option<Vec<usize>> = arg_value(args, "--chaos").map(|v| {
        v.split(',')
            .map(|part| {
                part.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("grape-worker: bad --chaos entry {part:?}");
                    std::process::exit(2);
                })
            })
            .collect()
    });
    if let Some(victims) = &chaos {
        if !spawn {
            eprintln!(
                "grape-worker: --chaos requires --spawn (the coordinator respawns the victims)"
            );
            std::process::exit(2);
        }
        if victims.is_empty() || victims.len() > workers as usize {
            eprintln!("grape-worker: --chaos needs 1..={workers} kill entries");
            std::process::exit(2);
        }
    }
    let job = JobSpec {
        algo,
        graph,
        strategy: arg_value(args, "--strategy").unwrap_or_else(|| "hash".into()),
        workers,
        index: 0,
        source: arg_value(args, "--source")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        threads: arg_value(args, "--threads")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        vertices: 0, // filled per connection by the coordinator
        checkpoint_every: arg_value(args, "--checkpoint-every")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if chaos.is_some() { 1 } else { 0 }),
        token: None, // stamped by the coordinator from the engine config
    };
    let timeout_secs = arg_value(args, "--timeout").and_then(|v| v.parse::<u64>().ok());
    let config = EngineConfig {
        read_timeout: Some(
            timeout_secs
                .map(Duration::from_secs)
                .unwrap_or(grape_core::transport::DEFAULT_READ_TIMEOUT),
        ),
        auth_token: token.clone(),
        ..Default::default()
    };
    // Both endpoints run the same timeout and token: the flags are forwarded
    // to spawned workers so detection and auth are symmetric.
    let mut shared_args: Vec<String> = timeout_secs
        .map(|s| vec!["--timeout".into(), s.to_string()])
        .unwrap_or_default();
    if let Some(token) = &token {
        shared_args.extend(["--token".into(), token.clone()]);
    }

    let outcome = if let Some(path) = arg_value(args, "--uds") {
        #[cfg(unix)]
        {
            // The guard unlinks a stale socket from a dead coordinator and
            // removes ours again on every exit path, including panics.
            let guard = UdsPathGuard::claim(&path)?;
            let listener = std::os::unix::net::UnixListener::bind(guard.path())?;
            eprintln!("coordinator listening on {path}");
            let mut connect_args = vec!["connect-uds".to_string(), path.clone()];
            connect_args.extend(shared_args.iter().cloned());
            let children = maybe_spawn(spawn, workers, chaos.as_deref(), &connect_args)?;
            let streams = (0..workers)
                .map(|_| listener.accept().map(|(s, _)| s))
                .collect::<std::io::Result<Vec<_>>>()?;
            let replacements = std::cell::RefCell::new(Vec::new());
            let outcome = match &chaos {
                None => run_coordinator_connections_with(&job, streams, &config)?,
                Some(_) => {
                    let mut respawn = |_worker: usize| {
                        replacements.borrow_mut().push(spawn_worker(&connect_args)?);
                        listener.accept().map(|(s, _)| s)
                    };
                    run_coordinator_connections_recoverable(&job, streams, &config, &mut respawn)?
                }
            };
            reap(children, chaos.as_ref().map_or(0, Vec::len))?;
            reap(replacements.into_inner(), 0)?;
            outcome
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err(std::io::Error::other("--uds requires a unix platform"));
        }
    } else {
        let listen = arg_value(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
        let listener = TcpListener::bind(&listen)?;
        let addr = listener.local_addr()?.to_string();
        eprintln!("coordinator listening on {addr}");
        let mut connect_args = vec!["connect".to_string(), addr.clone()];
        connect_args.extend(shared_args.iter().cloned());
        let children = maybe_spawn(spawn, workers, chaos.as_deref(), &connect_args)?;
        let streams = (0..workers)
            .map(|_| listener.accept().map(|(s, _)| s))
            .collect::<std::io::Result<Vec<_>>>()?;
        let replacements = std::cell::RefCell::new(Vec::new());
        let outcome = match &chaos {
            None => run_coordinator_connections_with(&job, streams, &config)?,
            Some(_) => {
                let mut respawn = |_worker: usize| {
                    replacements.borrow_mut().push(spawn_worker(&connect_args)?);
                    listener.accept().map(|(s, _)| s)
                };
                run_coordinator_connections_recoverable(&job, streams, &config, &mut respawn)?
            }
        };
        reap(children, chaos.as_ref().map_or(0, Vec::len))?;
        reap(replacements.into_inner(), 0)?;
        outcome
    };

    println!(
        "{}: {} supersteps, {} messages, {} wire bytes, {} recoveries, wall {:.2}ms",
        job.algo,
        outcome.stats.supersteps,
        outcome.stats.messages,
        outcome.stats.bytes,
        outcome.stats.recoveries,
        outcome.stats.wall_time.as_secs_f64() * 1e3
    );
    for (worker, digest) in outcome.digests.iter().enumerate() {
        println!("  worker {worker}: digest {digest:#018x}");
    }

    if verify {
        // Recovery replays supersteps, so message counts legitimately exceed
        // the reference after a kill; digests and superstep count must still
        // match bit for bit. The recoverable path forces checkpoints on, so
        // the reference must run the same cadence.
        let mut reference_job = job.clone();
        if chaos.is_some() && reference_job.checkpoint_every == 0 {
            reference_job.checkpoint_every = 1;
        }
        let reference = run_local_framed(&reference_job)?;
        let messages_diverge =
            chaos.is_none() && reference.stats.messages != outcome.stats.messages;
        if reference.digests != outcome.digests
            || reference.stats.supersteps != outcome.stats.supersteps
            || messages_diverge
        {
            return Err(std::io::Error::other(format!(
                "multi-process run diverged from the in-process reference: \
                 digests {:?} vs {:?}, supersteps {} vs {}, messages {} vs {}",
                outcome.digests,
                reference.digests,
                outcome.stats.supersteps,
                reference.stats.supersteps,
                outcome.stats.messages,
                reference.stats.messages
            )));
        }
        println!("verified: bit-identical to the in-process framed reference");
    }
    Ok(())
}

/// Spawns one worker child of this binary with `connect_args`.
fn spawn_worker(connect_args: &[String]) -> std::io::Result<std::process::Child> {
    let exe = std::env::current_exe()?;
    Command::new(&exe)
        .args(connect_args)
        .stdout(Stdio::null())
        .spawn()
}

/// Spawns `workers` copies of this binary in worker mode when `spawn` is
/// set. Under `--chaos`, victim worker i gets kill schedule entry i.
fn maybe_spawn(
    spawn: bool,
    workers: u32,
    chaos: Option<&[usize]>,
    connect_args: &[String],
) -> std::io::Result<Vec<std::process::Child>> {
    if !spawn {
        return Ok(Vec::new());
    }
    (0..workers)
        .map(|index| {
            let mut args = connect_args.to_vec();
            if let Some(kill_at) = chaos.and_then(|victims| victims.get(index as usize)) {
                args.extend(["--kill-at".to_string(), kill_at.to_string()]);
            }
            spawn_worker(&args)
        })
        .collect()
}

/// Waits for the spawned workers. Under chaos, `expected_kills` children
/// were SIGKILLed on purpose; exactly that many non-success exits are
/// tolerated.
fn reap(children: Vec<std::process::Child>, expected_kills: usize) -> std::io::Result<()> {
    let mut failures = 0usize;
    for mut child in children {
        let status = child.wait()?;
        if !status.success() {
            failures += 1;
            if failures > expected_kills {
                return Err(std::io::Error::other(format!(
                    "worker process exited with {status}"
                )));
            }
        }
    }
    Ok(())
}
