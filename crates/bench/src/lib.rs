//! # grape-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! GRAPE demo paper (see `DESIGN.md`, Section 4, for the experiment index):
//!
//! | Experiment | Binary | Criterion bench |
//! |------------|--------|-----------------|
//! | Table 1 — SSSP engine comparison | `table1_sssp` | `bench_table1`, `bench_engines` |
//! | §3(3) partition-strategy effect | `partition_effect` | `bench_partition` |
//! | §3(4) scale-up with workers | `scalability` | — |
//! | §3(3) registered query classes | `query_classes` | `bench_algorithms` |
//! | §2.2 bounded IncEval | `inceval_bounded` | `bench_inceval` |
//! | Fig. 4 social-media marketing | `social_marketing` | — |
//!
//! The binaries print the same rows the paper reports (wall time,
//! communication volume, message counts); absolute numbers differ from the
//! paper's 16–24 node cluster, but the relative shape — who wins and by
//! roughly what factor — is what the harness reproduces.

#![warn(missing_docs)]

use grape_algo::{SsspProgram, SsspQuery};
use grape_baseline::{BlockSssp, BlogelEngine, GasEngine, GasSssp, PregelEngine, PregelSssp};
use grape_core::{GrapeEngine, VertexId};
use grape_graph::generators::{
    barabasi_albert, labeled_social, road_network, RoadNetworkConfig, SocialGraphConfig,
};
use grape_graph::{CsrGraph, LabeledGraph};
use grape_partition::{BuiltinStrategy, PartitionAssignment};

/// Default worker count used by the headline experiments (the paper's Table 1
/// uses 24 processors; in-process threads saturate earlier, so 8 is the
/// default and every binary accepts an override via its first CLI argument).
pub const DEFAULT_WORKERS: usize = 8;

/// A row of an engine-comparison table (Table 1 format).
#[derive(Debug, Clone)]
pub struct EngineRow {
    /// System name.
    pub system: String,
    /// Category label used by the paper ("vertex-centric", …).
    pub category: String,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Messages shipped across workers.
    pub messages: u64,
    /// Communication volume in MB.
    pub comm_mb: f64,
}

/// Prints an engine-comparison table in the Table 1 layout.
pub fn print_engine_table(title: &str, rows: &[EngineRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<26} {:<20} {:>10} {:>12} {:>12} {:>12}",
        "System", "Category", "Time(s)", "Supersteps", "Messages", "Comm.(MB)"
    );
    for row in rows {
        println!(
            "{:<26} {:<20} {:>10.3} {:>12} {:>12} {:>12.4}",
            row.system, row.category, row.seconds, row.supersteps, row.messages, row.comm_mb
        );
    }
}

/// The road-network workload of Table 1 (a grid standing in for the US road
/// network: large diameter, near-constant degree).
pub fn table1_road_network(side: usize) -> CsrGraph<(), f64> {
    road_network(
        RoadNetworkConfig {
            width: side,
            height: side,
            ..Default::default()
        },
        2_024,
    )
    .expect("valid config")
}

/// The LiveJournal stand-in used by the partition-strategy experiment.
pub fn social_network(n: usize) -> CsrGraph<(), f64> {
    barabasi_albert(n, 8, 2_024).expect("valid config")
}

/// The labeled Weibo stand-in used by the pattern-matching and marketing
/// experiments.
pub fn labeled_network(persons: usize, products: usize) -> LabeledGraph {
    labeled_social(
        SocialGraphConfig {
            num_persons: persons,
            num_products: products,
            recommend_prob: 0.35,
            ..Default::default()
        },
        2_024,
    )
    .expect("valid config")
}

/// Runs SSSP on all four engines (Table 1) and returns the rows.
pub fn run_table1(graph: &CsrGraph<(), f64>, source: VertexId, workers: usize) -> Vec<EngineRow> {
    let mut rows = Vec::new();

    // Giraph stand-in: vertex-centric BSP.
    let (_, pregel) = PregelEngine::new(workers).run(&PregelSssp, &source, graph);
    rows.push(EngineRow {
        system: "Pregel (Giraph-like)".into(),
        category: "vertex-centric".into(),
        seconds: pregel.wall_time.as_secs_f64(),
        supersteps: pregel.supersteps,
        messages: pregel.messages,
        comm_mb: pregel.megabytes(),
    });

    // GraphLab stand-in: GAS with ghost synchronization.
    let (_, gas) = GasEngine::new(workers).run(&GasSssp, &source, graph);
    rows.push(EngineRow {
        system: "GAS (GraphLab-like)".into(),
        category: "vertex-centric".into(),
        seconds: gas.wall_time.as_secs_f64(),
        supersteps: gas.supersteps,
        messages: gas.messages,
        comm_mb: gas.megabytes(),
    });

    // Blogel stand-in: block-centric, same partition GRAPE uses.
    let assignment = BuiltinStrategy::MetisLike.partition(graph, workers);
    let (_, blogel) = BlogelEngine::new().run(&BlockSssp, &source, graph, &assignment);
    rows.push(EngineRow {
        system: "Blogel (block-centric)".into(),
        category: "block-centric".into(),
        seconds: blogel.wall_time.as_secs_f64(),
        supersteps: blogel.supersteps,
        messages: blogel.messages,
        comm_mb: blogel.megabytes(),
    });

    // GRAPE.
    let grape_run = GrapeEngine::new(SsspProgram)
        .run_on_graph(&SsspQuery::new(source), graph, &assignment)
        .expect("grape run succeeds");
    rows.push(EngineRow {
        system: "GRAPE (PIE)".into(),
        category: "auto-parallelization".into(),
        seconds: grape_run.stats.wall_time.as_secs_f64(),
        supersteps: grape_run.stats.supersteps,
        messages: grape_run.stats.messages,
        comm_mb: grape_run.stats.megabytes(),
    });
    rows
}

/// A row of the partition-strategy experiment.
#[derive(Debug, Clone)]
pub struct PartitionRow {
    /// Strategy name.
    pub strategy: String,
    /// Edge cut.
    pub cut_edges: usize,
    /// SSSP wall time on GRAPE.
    pub seconds: f64,
    /// Messages shipped.
    pub messages: u64,
    /// Supersteps executed.
    pub supersteps: usize,
}

/// Runs the §3(3) partition-strategy experiment: SSSP under GRAPE with each
/// strategy.
pub fn run_partition_effect(
    graph: &CsrGraph<(), f64>,
    source: VertexId,
    workers: usize,
    strategies: &[BuiltinStrategy],
) -> Vec<PartitionRow> {
    strategies
        .iter()
        .map(|strategy| {
            let assignment = strategy.partition(graph, workers);
            let quality = grape_partition::evaluate_partition(graph, &assignment);
            let result = GrapeEngine::new(SsspProgram)
                .run_on_graph(&SsspQuery::new(source), graph, &assignment)
                .expect("run succeeds");
            PartitionRow {
                strategy: strategy.name().to_string(),
                cut_edges: quality.cut_edges,
                seconds: result.stats.wall_time.as_secs_f64(),
                messages: result.stats.messages,
                supersteps: result.stats.supersteps,
            }
        })
        .collect()
}

/// Convenience: the partition assignment used by GRAPE/Blogel in Table 1.
pub fn table1_assignment(graph: &CsrGraph<(), f64>, workers: usize) -> PartitionAssignment {
    BuiltinStrategy::MetisLike.partition(graph, workers)
}

/// Parses the first CLI argument as a worker count, with a default.
pub fn workers_from_args(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Parses the second CLI argument as a scale factor, with a default.
pub fn scale_from_args(default: usize) -> usize {
    std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_have_expected_shape() {
        let graph = table1_road_network(24);
        let rows = run_table1(&graph, 0, 4);
        assert_eq!(rows.len(), 4);
        let pregel = &rows[0];
        let grape = &rows[3];
        // The headline claim: GRAPE needs far fewer supersteps and ships far
        // less data than the vertex-centric engine on road networks.
        assert!(grape.supersteps * 5 < pregel.supersteps);
        assert!(grape.comm_mb < pregel.comm_mb);
        print_engine_table("test", &rows);
    }

    #[test]
    fn partition_effect_shape() {
        let graph = social_network(3_000);
        let rows = run_partition_effect(
            &graph,
            0,
            8,
            &[BuiltinStrategy::MetisLike, BuiltinStrategy::Hash],
        );
        assert_eq!(rows.len(), 2);
        // The cut-edge gap is wide and deterministic: assert it strictly.
        assert!(
            rows[0].cut_edges < rows[1].cut_edges,
            "metis-like cut {} should be below hash cut {}",
            rows[0].cut_edges,
            rows[1].cut_edges
        );
        // The per-run message total depends on which reports the coordinator
        // happens to fold together in a superstep, so the metis-vs-hash
        // ordering can flip by a hair under load; keep the engine-path check
        // but with 50% slack so only a real messaging regression trips it.
        assert!(
            rows[0].messages <= rows[1].messages * 3 / 2,
            "metis-like messages {} should not exceed hash messages {} by >50%",
            rows[0].messages,
            rows[1].messages
        );
    }

    #[test]
    fn cli_helpers_fall_back_to_defaults() {
        assert_eq!(workers_from_args(5), 5);
        assert!(scale_from_args(7) >= 1);
    }
}
