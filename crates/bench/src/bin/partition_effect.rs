//! Reproduces the §3(3) partition-strategy experiment: SSSP on GRAPE over a
//! LiveJournal-like social graph with METIS-like vs streaming vs hash
//! partitions (the paper reports 18.3 s / 7.5 M messages for METIS vs 30 s /
//! 40 M messages for the streaming strategy on 16 workers).
//!
//! Usage: `cargo run --release -p grape-bench --bin partition_effect [workers] [vertices]`

use grape_bench::{run_partition_effect, social_network};
use grape_partition::BuiltinStrategy;

fn main() {
    let workers = grape_bench::workers_from_args(16);
    let n = grape_bench::scale_from_args(30_000);
    let graph = social_network(n);
    println!(
        "workload: power-law social graph, {} vertices, {} edges, {} workers",
        graph.num_vertices(),
        graph.num_edges(),
        workers
    );
    let rows = run_partition_effect(
        &graph,
        0,
        workers,
        &[
            BuiltinStrategy::MetisLike,
            BuiltinStrategy::Ldg,
            BuiltinStrategy::Fennel,
            BuiltinStrategy::Hash,
        ],
    );
    println!(
        "\n{:<18} {:>12} {:>12} {:>12} {:>12}",
        "Strategy", "Cut edges", "Time(s)", "Messages", "Supersteps"
    );
    for row in &rows {
        println!(
            "{:<18} {:>12} {:>12.3} {:>12} {:>12}",
            row.strategy, row.cut_edges, row.seconds, row.messages, row.supersteps
        );
    }
    let best = &rows[0];
    let worst = rows.iter().max_by_key(|r| r.messages).expect("non-empty");
    println!(
        "\nshape check: best partition ships {:.1}x fewer messages than the worst ({} vs {})",
        worst.messages as f64 / best.messages.max(1) as f64,
        best.messages,
        worst.messages
    );
}
