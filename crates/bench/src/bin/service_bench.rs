//! Query-service throughput/latency benchmark.
//!
//! Spins up one resident `GrapeService` daemon over framed TCP, loads a
//! graph once, then fires `--clients` concurrent client threads at it —
//! each submitting `--queries` queries round-robin over the weighted query
//! classes (SSSP, CC, PageRank) through a shared `Session`. Every query
//! pays connection setup, the BSP fixpoint and result assembly, but the
//! partition and fragments stay resident across the whole run.
//!
//! Reports per-class and overall latency percentiles (p50/p95/p99) plus
//! aggregate throughput, as a markdown table on stdout:
//!
//! ```text
//! service_bench [--smoke] [--clients N] [--queries Q] [--workers K] \
//!               [--graph SPEC]
//! ```
//!
//! `--smoke` shrinks the workload for CI (small graph, 4 clients × 6
//! queries); without it the defaults are 8 clients × 25 queries over a
//! 20k-vertex Barabási–Albert graph. Digests of every response are checked
//! against a cold one-shot reference, so a throughput number from a wrong
//! answer cannot be reported.

use grape_algo::Query;
use grape_partition::BuiltinStrategy;
use grape_worker::{GrapeService, GraphSpec, ServiceOptions, Session, SessionConfig, SessionGraph};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    sorted[((sorted.len() as f64 - 1.0) * q).round() as usize]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let clients: usize = arg_value(&args, "--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 4 } else { 8 });
    let queries_per_client: usize = arg_value(&args, "--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 6 } else { 25 });
    let workers: usize = arg_value(&args, "--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let spec_text = arg_value(&args, "--graph").unwrap_or_else(|| {
        if smoke {
            "ba:2000:3:11"
        } else {
            "ba:20000:3:11"
        }
        .into()
    });

    let spec = GraphSpec::parse(&spec_text).expect("graph spec");
    let graph = SessionGraph::generate(&spec).expect("generator");
    let classes = [Query::sssp(0), Query::cc(), Query::pagerank()];

    // Cold one-shot digests: the correctness reference for every response.
    let reference: Vec<u64> = classes
        .iter()
        .map(|query| {
            let session = Session::connect(SessionConfig::in_process(workers)).expect("connect");
            session.load(&graph, BuiltinStrategy::Hash).expect("load");
            session
                .submit(query.clone())
                .expect("submit")
                .join()
                .expect("cold run")
                .result
                .digest()
        })
        .collect();

    let daemon = GrapeService::bind("127.0.0.1:0", ServiceOptions::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    eprintln!("daemon listening on {}", daemon.endpoint());

    let session = Session::connect(SessionConfig::remote(
        workers,
        vec![daemon.endpoint().clone()],
    ))
    .expect("connect");
    session.load(&graph, BuiltinStrategy::Hash).expect("load");

    // Warm-up: one query per class, unmeasured.
    for query in &classes {
        session
            .submit(query.clone())
            .expect("submit")
            .join()
            .expect("warm-up");
    }

    let classes = Arc::new(classes);
    let reference = Arc::new(reference);
    let wall = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|client| {
            let session = session.clone();
            let classes = Arc::clone(&classes);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                let mut latencies: Vec<(&'static str, f64)> =
                    Vec::with_capacity(queries_per_client);
                for i in 0..queries_per_client {
                    let which = (client + i) % classes.len();
                    let query = classes[which].clone();
                    let name = match which {
                        0 => "sssp",
                        1 => "cc",
                        _ => "pagerank",
                    };
                    let t0 = Instant::now();
                    let outcome = session
                        .submit(query)
                        .expect("submit")
                        .join()
                        .expect("service query");
                    latencies.push((name, t0.elapsed().as_secs_f64() * 1e3));
                    assert_eq!(
                        outcome.result.digest(),
                        reference[which],
                        "client {client} query {i} ({name}): digest mismatch vs cold run"
                    );
                }
                latencies
            })
        })
        .collect();

    let mut by_class: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for thread in threads {
        for (name, ms) in thread.join().expect("client thread") {
            by_class.entry(name).or_default().push(ms);
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();
    daemon.shutdown().expect("shutdown");

    let total = clients * queries_per_client;
    println!(
        "\n## service_bench — {spec_text}, {workers} workers, {clients} clients × {queries_per_client} queries\n"
    );
    println!("| class | queries | p50 ms | p95 ms | p99 ms | max ms |");
    println!("|---|---|---|---|---|---|");
    let mut all: Vec<f64> = Vec::with_capacity(total);
    for (name, latencies) in &mut by_class {
        latencies.sort_by(f64::total_cmp);
        all.extend_from_slice(latencies);
        println!(
            "| {name} | {} | {:.2} | {:.2} | {:.2} | {:.2} |",
            latencies.len(),
            percentile(latencies, 0.50),
            percentile(latencies, 0.95),
            percentile(latencies, 0.99),
            latencies.last().copied().unwrap_or(f64::NAN),
        );
    }
    all.sort_by(f64::total_cmp);
    println!(
        "| **all** | {total} | {:.2} | {:.2} | {:.2} | {:.2} |",
        percentile(&all, 0.50),
        percentile(&all, 0.95),
        percentile(&all, 0.99),
        all.last().copied().unwrap_or(f64::NAN),
    );
    println!(
        "\nthroughput: {:.1} queries/s over {:.2} s wall (all digests verified)",
        total as f64 / wall_s,
        wall_s
    );
}
