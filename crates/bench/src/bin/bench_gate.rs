//! The CI bench-regression gate.
//!
//! Compares a freshly produced `hotpath_micro` artifact against the
//! committed baseline and fails (exit 1) when any gated metric regressed by
//! more than the threshold:
//!
//! ```text
//! bench_gate --baseline BENCH_pr4_smoke.json --current fresh.json \
//!            [--threshold 0.25] [--min-ms 2.0] [--summary $GITHUB_STEP_SUMMARY]
//! ```
//!
//! Rows are matched on `(algo, graph, n, m, k)` — a smoke artifact is never
//! compared against a full-size one. A metric is only *gated* when its
//! baseline is at least `--min-ms` (sub-millisecond smoke numbers are pure
//! noise at any threshold — they are still shown, as informational rows).
//! The full diff table is written as GitHub-flavoured markdown to
//! `--summary` (appended, so it lands in the job summary) and to stdout.
//!
//! Exit codes are typed: `0` clean, `1` at least one metric regressed, `2`
//! malformed invocation or artifact, `3` a matched baseline row is missing a
//! gated column the current artifact reports (a stale baseline silently
//! un-gates the metric — regenerate and commit the baseline instead).

use serde_json::Value;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Gated / reported metrics, in table order. `recovery_ms` (checkpoint
/// cadence 1) and `recovery_k4_ms` (cadence 4) only exist on the
/// single-threaded recovery-drill rows; `service_p50_ms` / `service_p99_ms`
/// (per-query latency through a resident query-service session) likewise
/// only on the single-threaded SSSP/CC/PageRank rows; `inc_ms` (incremental
/// re-answer after a mutation batch, vs `wall_ms` cold) only on the
/// single-threaded incremental rows. Rows without them simply have no entry;
/// a *matched* baseline row lacking a column the current row reports is a
/// typed error (see the module docs).
const METRICS: [&str; 8] = [
    "wall_ms",
    "coord_ms",
    "framed_wall_ms",
    "recovery_ms",
    "recovery_k4_ms",
    "service_p50_ms",
    "service_p99_ms",
    "inc_ms",
];

/// A typed gate failure that is not a performance regression.
#[derive(Debug, PartialEq)]
enum GateError {
    /// The baseline row matched on `key` but carries no entry for `metric`,
    /// so the metric would never be gated against it.
    MissingGatedColumn { key: String, metric: String },
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::MissingGatedColumn { key, metric } => write!(
                f,
                "baseline row {key:?} is missing gated column {metric:?} — \
                 regenerate the committed baseline"
            ),
        }
    }
}

/// Every gated column the current row reports that its matched baseline row
/// does not — each one is a [`GateError::MissingGatedColumn`].
fn missing_gated_columns(base: &BenchRow, current: &BenchRow) -> Vec<GateError> {
    current
        .metrics
        .iter()
        .filter(|(name, _)| !base.metrics.iter().any(|(b, _)| b == name))
        .map(|(name, _)| GateError::MissingGatedColumn {
            key: current.key.clone(),
            metric: name.clone(),
        })
        .collect()
}

struct BenchRow {
    key: String,
    algo: String,
    graph: String,
    metrics: Vec<(String, f64)>,
}

fn parse_rows(path: &str) -> Result<Vec<BenchRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let rows = value
        .as_array()
        .ok_or_else(|| format!("{path}: top level is not an array"))?;
    let mut out = Vec::new();
    for row in rows {
        let field = |name: &str| -> Result<&Value, String> {
            row.get_field(name)
                .ok_or_else(|| format!("{path}: row missing field {name:?}"))
        };
        let text_of = |v: &Value| -> String {
            match v {
                Value::Str(s) => s.clone(),
                Value::Int(i) => i.to_string(),
                Value::Float(f) => f.to_string(),
                other => format!("{other:?}"),
            }
        };
        let num_of = |v: &Value| -> Option<f64> {
            match v {
                Value::Int(i) => Some(*i as f64),
                Value::Float(f) => Some(*f),
                _ => None,
            }
        };
        let algo = text_of(field("algo")?);
        let graph = text_of(field("graph")?);
        // Artifacts predating the threads column key as single-threaded.
        let threads = row
            .get_field("threads")
            .map(&text_of)
            .unwrap_or_else(|| "1".into());
        let key = format!(
            "{algo}|{graph}|{}|{}|{}|t{threads}",
            text_of(field("n")?),
            text_of(field("m")?),
            text_of(field("k")?)
        );
        let metrics = METRICS
            .iter()
            .filter_map(|&name| {
                row.get_field(name)
                    .and_then(num_of)
                    .map(|v| (name.to_string(), v))
            })
            .collect();
        out.push(BenchRow {
            key,
            algo,
            graph,
            metrics,
        });
    }
    Ok(out)
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses an optional numeric flag strictly: absent → `default`, present but
/// missing or unparseable → an error (the gate must not silently fall back
/// to a default threshold the caller never asked for).
fn parse_flag(args: &[String], name: &str, default: f64) -> Result<f64, String> {
    let Some(pos) = args.iter().position(|a| a == name) else {
        return Ok(default);
    };
    let raw = args
        .get(pos + 1)
        .ok_or_else(|| format!("{name} expects a value"))?;
    raw.parse()
        .map_err(|_| format!("{name} expects a number, got {raw:?}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match (
        arg_value(&args, "--baseline"),
        arg_value(&args, "--current"),
    ) {
        (Some(b), Some(c)) => (b, c),
        _ => {
            eprintln!(
                "usage: bench_gate --baseline FILE --current FILE [--threshold 0.25] \
                 [--min-ms 2.0] [--summary FILE]"
            );
            return ExitCode::from(2);
        }
    };
    let (threshold, min_ms) = match (
        parse_flag(&args, "--threshold", 0.25),
        parse_flag(&args, "--min-ms", 2.0),
    ) {
        (Ok(threshold), Ok(min_ms)) => (threshold, min_ms),
        (threshold, min_ms) => {
            for err in [threshold.err(), min_ms.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            eprintln!(
                "usage: bench_gate --baseline FILE --current FILE [--threshold 0.25] \
                 [--min-ms 2.0] [--summary FILE]"
            );
            return ExitCode::from(2);
        }
    };

    let (baseline, current) = match (parse_rows(&baseline_path), parse_rows(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let mut table = String::new();
    writeln!(
        table,
        "### Bench gate: `{current_path}` vs `{baseline_path}` (threshold +{:.0}%, floor {min_ms}ms)\n",
        threshold * 100.0
    )
    .unwrap();
    writeln!(
        table,
        "| algo | graph | metric | baseline (ms) | current (ms) | Δ | status |"
    )
    .unwrap();
    writeln!(table, "|---|---|---|---:|---:|---:|---|").unwrap();

    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut errors: Vec<GateError> = Vec::new();
    for row in &current {
        let base_row = baseline.iter().find(|b| b.key == row.key);
        match base_row {
            None => {
                writeln!(
                    table,
                    "| {} | {} | — | — | — | — | new configuration (not gated) |",
                    row.algo, row.graph
                )
                .unwrap();
            }
            Some(base_row) => {
                errors.extend(missing_gated_columns(base_row, row));
                for (name, cur) in &row.metrics {
                    let Some((_, base)) = base_row.metrics.iter().find(|(n, _)| n == name) else {
                        writeln!(
                            table,
                            "| {} | {} | {name} | — | {cur:.2} | — | ❌ missing baseline column |",
                            row.algo, row.graph
                        )
                        .unwrap();
                        continue;
                    };
                    let delta_pct = if *base > 0.0 {
                        (cur - base) / base * 100.0
                    } else {
                        0.0
                    };
                    let (status, gated) = if *base < min_ms {
                        ("below floor (not gated)", false)
                    } else if *cur > base * (1.0 + threshold) {
                        ("❌ REGRESSION", true)
                    } else {
                        ("✅ ok", false)
                    };
                    if *base >= min_ms {
                        compared += 1;
                    }
                    if gated {
                        regressions += 1;
                    }
                    writeln!(
                        table,
                        "| {} | {} | {name} | {base:.2} | {cur:.2} | {delta_pct:+.1}% | {status} |",
                        row.algo, row.graph
                    )
                    .unwrap();
                }
            }
        }
    }
    writeln!(
        table,
        "\n{compared} gated comparisons, {regressions} regression(s)."
    )
    .unwrap();

    println!("{table}");
    if let Some(summary) = arg_value(&args, "--summary") {
        use std::io::Write as _;
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&summary)
        {
            let _ = writeln!(file, "{table}");
        }
    }

    if !errors.is_empty() {
        for err in &errors {
            eprintln!("bench_gate: {err}");
        }
        return ExitCode::from(3);
    }
    if regressions > 0 {
        eprintln!(
            "bench_gate: {regressions} metric(s) regressed more than {:.0}%",
            threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::{missing_gated_columns, parse_flag, BenchRow, GateError};

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn row(key: &str, metrics: &[(&str, f64)]) -> BenchRow {
        BenchRow {
            key: key.into(),
            algo: "sssp".into(),
            graph: "ba".into(),
            metrics: metrics.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn a_baseline_missing_a_gated_column_is_a_typed_error() {
        let base = row("sssp|ba|100|200|4|t1", &[("wall_ms", 3.0)]);
        let current = row("sssp|ba|100|200|4|t1", &[("wall_ms", 3.1), ("inc_ms", 0.4)]);
        assert_eq!(
            missing_gated_columns(&base, &current),
            vec![GateError::MissingGatedColumn {
                key: "sssp|ba|100|200|4|t1".into(),
                metric: "inc_ms".into(),
            }]
        );
    }

    #[test]
    fn matching_columns_produce_no_errors() {
        let base = row("k", &[("wall_ms", 3.0), ("inc_ms", 0.5)]);
        let current = row("k", &[("wall_ms", 3.1), ("inc_ms", 0.4)]);
        assert!(missing_gated_columns(&base, &current).is_empty());
    }

    #[test]
    fn a_column_only_the_baseline_has_is_not_an_error() {
        // The current artifact dropping a metric is a different (visible)
        // situation: its rows simply shrink; the gate only defends against
        // stale baselines silently un-gating *reported* metrics.
        let base = row("k", &[("wall_ms", 3.0), ("recovery_ms", 9.0)]);
        let current = row("k", &[("wall_ms", 3.1)]);
        assert!(missing_gated_columns(&base, &current).is_empty());
    }

    #[test]
    fn absent_flag_falls_back_to_the_default() {
        assert_eq!(parse_flag(&args(&[]), "--threshold", 0.25), Ok(0.25));
        assert_eq!(
            parse_flag(&args(&["--min-ms", "5"]), "--threshold", 0.25),
            Ok(0.25)
        );
    }

    #[test]
    fn present_flag_is_parsed() {
        assert_eq!(
            parse_flag(&args(&["--threshold", "0.5"]), "--threshold", 0.25),
            Ok(0.5)
        );
        assert_eq!(
            parse_flag(&args(&["--min-ms", "3"]), "--min-ms", 2.0),
            Ok(3.0)
        );
    }

    #[test]
    fn garbage_value_is_an_error_not_a_silent_default() {
        // Regression: `--threshold banana` used to fall back to 0.25 and the
        // gate ran with a threshold the caller never asked for.
        let err = parse_flag(&args(&["--threshold", "banana"]), "--threshold", 0.25).unwrap_err();
        assert!(err.contains("banana"), "{err}");
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse_flag(&args(&["--min-ms"]), "--min-ms", 2.0).unwrap_err();
        assert!(err.contains("expects a value"), "{err}");
    }
}
