//! Reproduces the Fig. 4 application experiment: GPAR-based social-media
//! marketing. GRAPE parallelizes the rule evaluation; the experiment reports
//! the ranked potential customers and the speedup as workers are added ("the
//! more workers are used, the faster it finds potential customers").
//!
//! Usage: `cargo run --release -p grape-bench --bin social_marketing [max_workers] [persons]`

use grape_algo::{MarketingProgram, MarketingQuery};
use grape_bench::labeled_network;
use grape_core::GrapeEngine;
use grape_partition::BuiltinStrategy;

fn main() {
    let max_workers = grape_bench::workers_from_args(16);
    let persons = grape_bench::scale_from_args(20_000);
    let graph = labeled_network(persons, 10);
    let product = persons as u64;
    println!(
        "workload: labeled social graph with {} vertices, {} edges; product {}",
        graph.num_vertices(),
        graph.num_edges(),
        product
    );
    let query = MarketingQuery::new(product);

    println!(
        "\n{:<10} {:>12} {:>12} {:>12} {:>12}",
        "workers", "time (s)", "prospects", "messages", "supersteps"
    );
    let mut single_worker_time = None;
    let mut reference: Option<Vec<grape_algo::marketing::Prospect>> = None;
    for workers in [1usize, 2, 4, 8, 16, 24]
        .into_iter()
        .filter(|w| *w <= max_workers)
    {
        let assignment = BuiltinStrategy::Fennel.partition(&graph, workers);
        let result = GrapeEngine::new(MarketingProgram)
            .run_on_graph(&query, &graph, &assignment)
            .expect("run succeeds");
        println!(
            "{:<10} {:>12.3} {:>12} {:>12} {:>12}",
            workers,
            result.stats.wall_time.as_secs_f64(),
            result.output.len(),
            result.stats.messages,
            result.stats.supersteps
        );
        if workers == 1 {
            single_worker_time = Some(result.stats.wall_time.as_secs_f64());
        }
        if let Some(r) = &reference {
            assert_eq!(
                r, &result.output,
                "answers must not depend on the worker count"
            );
        }
        reference = Some(result.output);
    }

    let prospects = reference.expect("at least one run");
    println!("\ntop potential customers (ranked by confidence):");
    for p in prospects.iter().take(4) {
        println!(
            "  person {:>7}: {:.0}% of {} followees recommend the product",
            p.person,
            p.recommend_ratio * 100.0,
            p.followees
        );
    }
    if let Some(t1) = single_worker_time {
        println!(
            "\nshape check: 1 worker takes {t1:.3}s; adding workers reduces (or holds) the time."
        );
    }
}
