//! Reproduces the §3(4) scalability experiment of the analytics panel:
//! GRAPE's wall time as the number of workers grows, for SSSP, CC and
//! PageRank on road-network and social workloads.
//!
//! Usage: `cargo run --release -p grape-bench --bin scalability [max_workers] [scale]`

use grape_algo::{CcProgram, CcQuery, PageRankProgram, PageRankQuery, SsspProgram, SsspQuery};
use grape_bench::{social_network, table1_road_network};
use grape_core::GrapeEngine;
use grape_partition::BuiltinStrategy;

fn main() {
    let max_workers = grape_bench::workers_from_args(16);
    let scale = grape_bench::scale_from_args(96);
    let road = table1_road_network(scale);
    let social = social_network(scale * 150);
    let worker_counts: Vec<usize> = [1, 2, 4, 8, 16, 24]
        .into_iter()
        .filter(|w| *w <= max_workers)
        .collect();

    println!(
        "road network: {} vertices / social graph: {} vertices",
        road.num_vertices(),
        social.num_vertices()
    );
    println!(
        "\n{:<10} {:>14} {:>14} {:>14}",
        "workers", "sssp-road (s)", "cc-social (s)", "pagerank (s)"
    );
    for &workers in &worker_counts {
        let road_assignment = BuiltinStrategy::MetisLike.partition(&road, workers);
        let sssp = GrapeEngine::new(SsspProgram)
            .run_on_graph(&SsspQuery::new(0), &road, &road_assignment)
            .expect("sssp run");

        let social_assignment = BuiltinStrategy::Fennel.partition(&social, workers);
        let cc = GrapeEngine::new(CcProgram)
            .run_on_graph(&CcQuery, &social, &social_assignment)
            .expect("cc run");

        let pr = GrapeEngine::new(PageRankProgram::new(social.num_vertices()))
            .run_on_graph(
                &PageRankQuery {
                    max_local_iterations: 20,
                    tolerance: 1e-4,
                    ..Default::default()
                },
                &social,
                &social_assignment,
            )
            .expect("pagerank run");

        println!(
            "{:<10} {:>14.3} {:>14.3} {:>14.3}",
            workers,
            sssp.stats.wall_time.as_secs_f64(),
            cc.stats.wall_time.as_secs_f64(),
            pr.stats.wall_time.as_secs_f64()
        );
    }
    println!("\nshape check: times drop (or stay flat once overheads dominate) as workers grow.");
}
