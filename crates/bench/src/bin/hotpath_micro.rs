//! Hot-path microbenchmark: SSSP + CC + PageRank on a road network and a
//! Barabási–Albert graph, through the full PIE engine.
//!
//! Writes `BENCH_pr3.json` (in the current directory) with one
//! machine-readable row per `(algo, graph)` pair:
//!
//! ```json
//! {"algo": "sssp", "graph": "road", "n": 16384, "m": 64000, "k": 4,
//!  "wall_ms": 12.3, "peval_ms": 8.1, "inceval_ms": 2.2, "coord_ms": 2.0}
//! ```
//!
//! `coord_ms` is the non-compute gap (`wall - peval - inceval`): coordinator
//! fold, border publication, and per-superstep scheduling — the superstep
//! constant the slot-addressed delta messaging of PR 3 attacks.
//!
//! Pass `--smoke` for a tiny configuration suitable for CI, which checks the
//! plumbing and keeps the artifact format identical without burning minutes.

use grape_algo::{CcProgram, CcQuery, PageRankProgram, PageRankQuery, SsspProgram, SsspQuery};
use grape_core::{GrapeEngine, PieProgram, RunStats};
use grape_graph::generators::{barabasi_albert, road_network, RoadNetworkConfig};
use grape_graph::WeightedGraph;
use grape_partition::{HashPartitioner, Partitioner};
use std::fmt::Write as _;
use std::time::Instant;

/// One benchmark row, serialized by hand so the harness stays shim-free.
struct Row {
    algo: &'static str,
    graph: &'static str,
    n: usize,
    m: usize,
    k: usize,
    wall_ms: f64,
    peval_ms: f64,
    inceval_ms: f64,
}

impl Row {
    fn from_stats(
        algo: &'static str,
        graph: &'static str,
        g: &WeightedGraph,
        k: usize,
        wall_ms: f64,
        stats: &RunStats,
    ) -> Self {
        Self {
            algo,
            graph,
            n: g.num_vertices(),
            m: g.num_edges(),
            k,
            wall_ms,
            peval_ms: stats.peval_seconds * 1e3,
            inceval_ms: stats.inceval_seconds * 1e3,
        }
    }

    /// The non-compute gap: coordinator fold + border publication +
    /// per-superstep scheduling.
    fn coord_ms(&self) -> f64 {
        (self.wall_ms - self.peval_ms - self.inceval_ms).max(0.0)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"algo\": \"{}\", \"graph\": \"{}\", \"n\": {}, \"m\": {}, \"k\": {}, \
             \"wall_ms\": {:.3}, \"peval_ms\": {:.3}, \"inceval_ms\": {:.3}, \
             \"coord_ms\": {:.3}}}",
            self.algo,
            self.graph,
            self.n,
            self.m,
            self.k,
            self.wall_ms,
            self.peval_ms,
            self.inceval_ms,
            self.coord_ms()
        )
    }
}

/// Runs `program` on `graph` with a hash partition into `k` fragments,
/// repeating `reps` times and keeping the fastest wall time (the usual
/// microbenchmark convention: the minimum is the least noisy estimator).
fn run_case<P>(
    algo: &'static str,
    graph_name: &'static str,
    program: P,
    query: &P::Query,
    graph: &WeightedGraph,
    k: usize,
    reps: usize,
) -> Row
where
    P: PieProgram<VertexData = (), EdgeData = f64>,
{
    let assignment = HashPartitioner.partition(graph, k);
    let fragments = grape_partition::build_fragments(graph, &assignment);
    let engine = GrapeEngine::new(program);
    let mut best_wall = f64::INFINITY;
    let mut best_stats = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let result = engine.run(query, &fragments).expect("engine run");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        if wall < best_wall {
            best_wall = wall;
            best_stats = Some(result.stats);
        }
    }
    let stats = best_stats.expect("at least one rep");
    let row = Row::from_stats(algo, graph_name, graph, k, best_wall, &stats);
    eprintln!(
        "{:>8} on {:<5}: n={} m={} k={} wall={:.2}ms peval={:.2}ms inceval={:.2}ms \
         coord={:.2}ms ({} supersteps)",
        algo,
        graph_name,
        row.n,
        row.m,
        row.k,
        row.wall_ms,
        row.peval_ms,
        row.inceval_ms,
        row.coord_ms(),
        stats.supersteps
    );
    row
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let k = 4;
    let reps = if smoke { 1 } else { 3 };

    let road = road_network(
        if smoke {
            RoadNetworkConfig {
                width: 12,
                height: 12,
                ..Default::default()
            }
        } else {
            RoadNetworkConfig {
                width: 128,
                height: 128,
                ..Default::default()
            }
        },
        7,
    )
    .expect("road network");
    let ba = if smoke {
        barabasi_albert(300, 3, 11)
    } else {
        barabasi_albert(30_000, 5, 11)
    }
    .expect("barabasi-albert");

    let mut rows = Vec::new();
    for (graph_name, g) in [("road", &road), ("ba", &ba)] {
        rows.push(run_case(
            "sssp",
            graph_name,
            SsspProgram,
            &SsspQuery::new(0),
            g,
            k,
            reps,
        ));
        rows.push(run_case("cc", graph_name, CcProgram, &CcQuery, g, k, reps));
        rows.push(run_case(
            "pagerank",
            graph_name,
            PageRankProgram::new(g.num_vertices()),
            &PageRankQuery::default(),
            g,
            k,
            reps,
        ));
    }

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(json, "  {}{}", row.to_json(), sep).expect("write row");
    }
    json.push_str("]\n");
    std::fs::write("BENCH_pr3.json", &json).expect("write BENCH_pr3.json");
    println!("{json}");
}
