//! Hot-path microbenchmark: SSSP + CC + PageRank on a road network and a
//! Barabási–Albert graph, plus the pattern/ML query classes (Sim, SubIso,
//! Keyword, CF) on a labeled social graph and a bipartite rating graph —
//! all through the full PIE engine, on both transport backends.
//!
//! Writes `BENCH_pr10.json` (or `BENCH_pr10_smoke.json` with `--smoke`) in
//! the current directory, one machine-readable row per `(algo, graph)` pair:
//!
//! ```json
//! {"algo": "sssp", "graph": "road", "n": 16384, "m": 64000, "k": 4,
//!  "wall_ms": 12.3, "peval_ms": 8.1, "inceval_ms": 2.2, "coord_ms": 2.0,
//!  "framed_wall_ms": 13.0, "wire_bytes": 181234, "wire_mbps": 13.3,
//!  "recovery_ms": 21.7}
//! ```
//!
//! `coord_ms` is the non-compute gap (`wall - peval - inceval`) on the
//! in-process path: coordinator fold, border publication, and per-superstep
//! scheduling. The wire columns come from a second run over the **framed**
//! transport, which round-trips every message through the length-prefixed
//! codec: `wire_bytes` is actual framed bytes (headers included, not
//! estimates) and `wire_mbps` the resulting codec throughput
//! (`wire_bytes / framed_wall`).
//!
//! `recovery_ms` (single-threaded SSSP/CC/PageRank rows) is the wall time
//! of the same job over real TCP sockets with one worker killed at its
//! first evaluation command: the fragment and last checkpoint are
//! re-shipped to a replacement at a bumped epoch and the commands since
//! that checkpoint replayed. `recovery_ms` runs checkpoint cadence 1
//! (snapshot on every superstep — cheapest replay), `recovery_k4_ms` the
//! same drill at cadence 4 (snapshot every 4th superstep — up to 4 replayed
//! commands). The recovered digests are asserted bit-identical to the
//! undisturbed run before the timing is accepted.
//!
//! `service_p50_ms` / `service_p99_ms` (single-threaded SSSP/CC/PageRank
//! rows) are per-query latency percentiles through the resident query
//! service: one `GrapeService` daemon over framed TCP, fragments loaded
//! once, then a stream of identical queries submitted through a `Session` —
//! each query paying connection setup, the BSP fixpoint and result
//! assembly, but *not* partitioning or fragment shipping.
//!
//! `inc_ms` (single-threaded SSSP/CC/PageRank rows, and the single-threaded
//! Sim row) is the wall time of an *incremental* re-answer: a cold run
//! captures its converged per-fragment state, a small mutation batch
//! (edge inserts for the weighted rows, edge deletes for Sim) is applied to
//! the resident fragments, and the engine re-runs seeded from the old
//! fixpoint. The warm answer is asserted against a cold run on the updated
//! fragments (bit-identical for SSSP/CC/Sim, within the quantized-fixpoint
//! cluster radius for PageRank) before the timing is accepted; the headline
//! claim is `inc_ms` < `wall_ms`.
//!
//! Pass `--smoke` for a small configuration suitable for CI: same format,
//! seconds instead of minutes. CI regression-gates `wall_ms` / `coord_ms` /
//! `framed_wall_ms` / `recovery_ms` / `service_p50_ms` / `service_p99_ms` /
//! `inc_ms` of the smoke artifact against the committed baseline via the
//! `bench_gate` binary.

use grape_algo::Query;
use grape_algo::{
    CcProgram, CcQuery, CfProgram, CfQuery, KeywordProgram, KeywordQuery, PageRankProgram,
    PageRankQuery, SimProgram, SimQuery, SsspProgram, SsspQuery, SubIsoProgram, SubIsoQuery,
};
use grape_core::par::ThreadCount;
use grape_core::{EngineConfig, GrapeEngine, PieProgram, RunStats, TransportKind};
use grape_graph::generators::{
    barabasi_albert, bipartite_ratings, labeled_social, road_network, RoadNetworkConfig,
    SocialGraphConfig,
};
use grape_graph::labels::PatternGraph;
use grape_graph::CsrGraph;
use grape_partition::BuiltinStrategy;
use grape_partition::{HashPartitioner, Partitioner};
use grape_worker::{
    run_local_framed, run_local_recoverable_tcp, GrapeService, GraphSpec, JobSpec, ServiceOptions,
    Session, SessionConfig, SessionGraph,
};
use std::fmt::Write as _;
use std::time::Instant;

/// One benchmark row, serialized by hand so the harness stays shim-free.
struct Row {
    algo: &'static str,
    graph: &'static str,
    n: usize,
    m: usize,
    k: usize,
    /// Intra-worker threads (`threads_per_worker`) the engine was pinned to.
    threads: usize,
    wall_ms: f64,
    peval_ms: f64,
    inceval_ms: f64,
    /// Wall time of the same job over the framed transport.
    framed_wall_ms: f64,
    /// Actual framed bytes shipped by the framed run (headers included).
    wire_bytes: u64,
    /// Wall time of a TCP run with one injected worker kill, recovered from
    /// checkpoint at cadence 1 (snapshot every superstep).
    recovery_ms: Option<f64>,
    /// The same recovery drill at checkpoint cadence 4: bounded replay of up
    /// to 4 commands since the last snapshot.
    recovery_k4_ms: Option<f64>,
    /// Median per-query latency through a resident TCP query service.
    service_p50_ms: Option<f64>,
    /// Tail (p99) per-query latency through the same resident service.
    service_p99_ms: Option<f64>,
    /// Wall time of an incremental re-answer after a mutation batch, seeded
    /// from the cold run's converged state (compare against `wall_ms`).
    inc_ms: Option<f64>,
}

impl Row {
    /// The non-compute gap: coordinator fold + border publication +
    /// per-superstep scheduling.
    fn coord_ms(&self) -> f64 {
        (self.wall_ms - self.peval_ms - self.inceval_ms).max(0.0)
    }

    /// Codec throughput of the framed run, in MB/s of actual wire bytes.
    fn wire_mbps(&self) -> f64 {
        if self.framed_wall_ms <= 0.0 {
            return 0.0;
        }
        (self.wire_bytes as f64 / 1e6) / (self.framed_wall_ms / 1e3)
    }

    fn to_json(&self) -> String {
        let mut recovery = self
            .recovery_ms
            .map(|ms| format!(", \"recovery_ms\": {ms:.3}"))
            .unwrap_or_default();
        if let Some(ms) = self.recovery_k4_ms {
            let _ = write!(recovery, ", \"recovery_k4_ms\": {ms:.3}");
        }
        if let Some(ms) = self.service_p50_ms {
            let _ = write!(recovery, ", \"service_p50_ms\": {ms:.3}");
        }
        if let Some(ms) = self.service_p99_ms {
            let _ = write!(recovery, ", \"service_p99_ms\": {ms:.3}");
        }
        if let Some(ms) = self.inc_ms {
            let _ = write!(recovery, ", \"inc_ms\": {ms:.3}");
        }
        format!(
            "{{\"algo\": \"{}\", \"graph\": \"{}\", \"n\": {}, \"m\": {}, \"k\": {}, \
             \"threads\": {}, \
             \"wall_ms\": {:.3}, \"peval_ms\": {:.3}, \"inceval_ms\": {:.3}, \
             \"coord_ms\": {:.3}, \"framed_wall_ms\": {:.3}, \"wire_bytes\": {}, \
             \"wire_mbps\": {:.3}{recovery}}}",
            self.algo,
            self.graph,
            self.n,
            self.m,
            self.k,
            self.threads,
            self.wall_ms,
            self.peval_ms,
            self.inceval_ms,
            self.coord_ms(),
            self.framed_wall_ms,
            self.wire_bytes,
            self.wire_mbps()
        )
    }
}

/// Best-of-`reps` wall time (the minimum is the least noisy estimator) plus
/// the stats of the fastest run, for one transport backend.
fn best_run<P>(
    engine: &GrapeEngine<P>,
    query: &P::Query,
    fragments: &[grape_core::Fragment<P::VertexData, P::EdgeData>],
    reps: usize,
) -> (f64, RunStats)
where
    P: PieProgram,
{
    let mut best_wall = f64::INFINITY;
    let mut best_stats = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let result = engine.run(query, fragments).expect("engine run");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        if wall < best_wall {
            best_wall = wall;
            best_stats = Some(result.stats);
        }
    }
    (best_wall, best_stats.expect("at least one rep"))
}

/// Runs `program` on `graph` with a hash partition into `k` fragments over
/// both transports.
#[allow(clippy::too_many_arguments)]
fn run_case<P>(
    algo: &'static str,
    graph_name: &'static str,
    program: P,
    query: &P::Query,
    graph: &CsrGraph<P::VertexData, P::EdgeData>,
    k: usize,
    threads: usize,
    reps: usize,
) -> Row
where
    P: PieProgram + Clone,
{
    let assignment = HashPartitioner.partition(graph, k);
    let fragments = grape_partition::build_fragments(graph, &assignment);
    let pinned = ThreadCount::Fixed(threads as u32);

    let engine = GrapeEngine::new(program.clone())
        .with_config(EngineConfig::builder().threads_per_worker(pinned).build());
    let (wall_ms, stats) = best_run(&engine, query, &fragments, reps);

    let framed_engine = GrapeEngine::new(program).with_config(
        EngineConfig::builder()
            .transport(TransportKind::Framed)
            .threads_per_worker(pinned)
            .build(),
    );
    let (framed_wall_ms, framed_stats) = best_run(&framed_engine, query, &fragments, reps);

    let row = Row {
        algo,
        graph: graph_name,
        n: graph.num_vertices(),
        m: graph.num_edges(),
        k,
        threads,
        wall_ms,
        peval_ms: stats.peval_seconds * 1e3,
        inceval_ms: stats.inceval_seconds * 1e3,
        framed_wall_ms,
        wire_bytes: framed_stats.bytes,
        recovery_ms: None,
        recovery_k4_ms: None,
        service_p50_ms: None,
        service_p99_ms: None,
        inc_ms: None,
    };
    eprintln!(
        "{:>8} on {:<5}: n={} m={} k={} t={} wall={:.2}ms peval={:.2}ms inceval={:.2}ms \
         coord={:.2}ms ({} supersteps) | framed wall={:.2}ms wire={}B ({:.1} MB/s)",
        algo,
        graph_name,
        row.n,
        row.m,
        row.k,
        row.threads,
        row.wall_ms,
        row.peval_ms,
        row.inceval_ms,
        row.coord_ms(),
        stats.supersteps,
        row.framed_wall_ms,
        row.wire_bytes,
        row.wire_mbps()
    );
    row
}

/// Best-of-`reps` wall time of a TCP run with one worker killed and
/// recovered from the last checkpoint (taken every `checkpoint_every`
/// supersteps), pinned bit-identical to the undisturbed run.
fn recovery_best_ms(
    algo: &'static str,
    spec: &GraphSpec,
    k: u32,
    checkpoint_every: u32,
    reps: usize,
) -> f64 {
    let job = JobSpec {
        algo: algo.into(),
        graph: spec.clone(),
        strategy: "hash".into(),
        workers: k,
        index: 0,
        source: 0,
        threads: 1,
        vertices: 0,
        checkpoint_every,
        token: None,
    };
    let reference = run_local_framed(&job).expect("recovery reference run");
    // Kill at the victim's first evaluation command (its Init). The kill
    // index counts commands the *victim* receives, and a worker that hits
    // its local fixpoint early receives fewer IncEvals than the global
    // superstep count — index 0 is the only schedule guaranteed to fire on
    // every graph.
    let kill_at = 0;
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let outcome = run_local_recoverable_tcp(&job, 1, kill_at).expect("recovery run");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            outcome.digests, reference.digests,
            "{algo}: recovered digests diverge from the undisturbed run"
        );
        assert!(
            outcome.stats.recoveries >= 1,
            "{algo}: the scheduled kill never fired"
        );
        best = best.min(wall);
    }
    best
}

/// Best-of-`reps` wall time of an incremental re-answer: a single-threaded
/// cold run on the original fragments captures its converged state, `batch`
/// is applied to the graph and fragments through the same delta-overlay path
/// the query service uses, and the engine re-runs seeded from the old
/// fixpoint. `check` compares the warm output against a cold run on the
/// updated fragments before any timing is accepted.
#[allow(clippy::too_many_arguments)]
fn incremental_best_ms<P>(
    algo: &'static str,
    program: P,
    query: &P::Query,
    graph: &CsrGraph<P::VertexData, P::EdgeData>,
    k: usize,
    batch: &[grape_graph::GraphMutation<P::VertexData, P::EdgeData>],
    reps: usize,
    check: impl Fn(&P::Output, &P::Output) -> bool,
) -> f64
where
    P: PieProgram + Clone,
{
    let mut assignment = HashPartitioner.partition(graph, k);
    let fragments = grape_partition::build_fragments(graph, &assignment);
    // Only the seeding run captures converged snapshots; the timed warm runs
    // (and the cold reference they are compared with) use the same plain
    // config `wall_ms` was measured under, so the two columns are comparable.
    let seed_engine = GrapeEngine::new(program.clone()).with_config(
        EngineConfig::builder()
            .threads_per_worker(ThreadCount::Fixed(1))
            .capture_converged(true)
            .build(),
    );
    let engine = GrapeEngine::new(program.clone()).with_config(
        EngineConfig::builder()
            .threads_per_worker(ThreadCount::Fixed(1))
            .build(),
    );
    let cold_original = seed_engine.run(query, &fragments).expect("cold run");
    let seeds = cold_original
        .converged
        .expect("converged snapshots captured");

    let mut delta = grape_graph::DeltaGraph::new(graph.clone());
    let receipt = delta.apply(batch).expect("bench mutation batch applies");
    assert!(
        program.incremental_eligible(&receipt.profile),
        "{algo}: bench mutation batch is not warm-eligible — inc_ms would time a cold run"
    );
    let resolved = grape_partition::resolve_net_mutations(receipt.net, &mut assignment, |v| {
        delta.vertex_data(v).cloned()
    });
    let updated: Vec<_> = fragments
        .iter()
        .map(|f| f.apply_mutations(&resolved).expect("fragment update"))
        .collect();
    let cold = engine
        .run(query, &updated)
        .expect("cold run on updated graph");

    // Incremental runs are sub-millisecond, where a 2-rep minimum is mostly
    // scheduler noise — spend a few extra (cheap) reps on a stable floor.
    let mut best = f64::INFINITY;
    for _ in 0..(reps * 3).max(5) {
        let t0 = Instant::now();
        let warm = engine
            .run_incremental(
                query,
                &updated,
                seeds.iter().cloned().map(Some).collect(),
                &receipt.dirty,
                &receipt.profile,
            )
            .expect("incremental run");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            check(&warm.output, &cold.output),
            "{algo}: incremental answer diverged from the cold run on the updated graph"
        );
        best = best.min(wall);
    }
    best
}

/// Per-query latency percentiles through a resident query service: one TCP
/// daemon, fragments loaded once, then `queries` identical submissions
/// measured individually. Returns `(p50, p99)` in milliseconds.
fn service_percentiles(
    graph: &CsrGraph<(), f64>,
    algo: &str,
    k: usize,
    queries: usize,
) -> (f64, f64) {
    let daemon = GrapeService::bind("127.0.0.1:0", ServiceOptions::default())
        .expect("bind service")
        .spawn()
        .expect("spawn service");
    let session = Session::connect(SessionConfig::remote(k, vec![daemon.endpoint().clone()]))
        .expect("connect session");
    session
        .load(&SessionGraph::from(graph.clone()), BuiltinStrategy::Hash)
        .expect("load graph");
    let query = match algo {
        "sssp" => Query::sssp(0),
        "cc" => Query::cc(),
        "pagerank" => Query::pagerank(),
        other => unreachable!("no service row for {other}"),
    };
    let mut latencies = Vec::with_capacity(queries);
    for _ in 0..queries.max(2) {
        let t0 = Instant::now();
        session
            .submit(query.clone())
            .expect("submit")
            .join()
            .expect("service query");
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    daemon.shutdown().expect("shutdown service");
    latencies.sort_by(f64::total_cmp);
    let pick = |q: f64| latencies[((latencies.len() as f64 - 1.0) * q).round() as usize];
    (pick(0.50), pick(0.99))
}

/// Deterministic insert-only batch for the weighted incremental rows: a few
/// *local* edges between near-by vertices of the same hash fragment (no
/// vertex inserts, so the SSSP/CC warm paths stay eligible and
/// `global_vertices` is unchanged). Local intra-fragment edges model the
/// typical streaming update — they touch a bounded cone of the old fixpoint
/// and leave the mirror sets alone, which is the regime incremental
/// evaluation is built for; a long-range cross-cut shortcut would invalidate
/// most distances (and every fragment's dense-index space) and rightly cost
/// close to a cold run. Endpoints are drawn from the actual vertex list —
/// generator ids need not be contiguous.
fn weighted_insert_batch(
    graph: &CsrGraph<(), f64>,
    k: usize,
) -> Vec<grape_graph::GraphMutation<(), f64>> {
    let assignment = HashPartitioner.partition(graph, k);
    let mut by_fragment: Vec<Vec<u64>> = vec![Vec::new(); k];
    for v in graph.vertices() {
        if let Some(f) = assignment.fragment_of(v) {
            by_fragment[f].push(v);
        }
    }
    let pairs: Vec<(u64, u64)> = by_fragment
        .iter()
        .flat_map(|f| f.windows(2).map(|w| (w[0], w[1])))
        .collect();
    assert!(
        pairs.len() >= 8,
        "bench graph too small for the insert batch"
    );
    // Weights sit above the generators' 1..10 range: a new edge is a slow
    // detour that rarely shortens existing paths, so the SSSP warm run only
    // re-examines the cone around the insertion instead of re-deriving most
    // of the distance field.
    (0..8usize)
        .map(|i| {
            let (src, dst) = pairs[i * pairs.len() / 8];
            grape_graph::GraphMutation::AddEdge {
                src,
                dst,
                data: 30.0 + i as f64,
            }
        })
        .collect()
}

/// The first `count` distinct (src, dst) pairs of `graph` as edge deletes
/// (`RemoveEdge` drops all parallel copies of a pair at once) — the
/// delete-only batch that keeps Sim's warm path eligible.
fn delete_batch<V: Clone, E: Clone>(
    graph: &CsrGraph<V, E>,
    count: usize,
) -> Vec<grape_graph::GraphMutation<V, E>> {
    let mut seen = std::collections::HashSet::new();
    graph
        .edges()
        .filter_map(|(s, d, _)| {
            seen.insert((s, d))
                .then_some(grape_graph::GraphMutation::RemoveEdge { src: s, dst: d })
        })
        .take(count)
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let k = 4;
    let reps = if smoke { 2 } else { 3 };
    let out_file = if smoke {
        "BENCH_pr10_smoke.json"
    } else {
        "BENCH_pr10.json"
    };
    let service_queries = if smoke { 10 } else { 30 };
    // The thread axis: the four ported hot loops run once single-threaded
    // and once on a 4-thread pool (results are bit-identical; only the wall
    // clock may differ). The remaining classes stay single-threaded rows.
    let thread_axis = [1usize, 4];

    let (road_w, road_h) = if smoke { (48, 48) } else { (128, 128) };
    let road = road_network(
        RoadNetworkConfig {
            width: road_w,
            height: road_h,
            ..Default::default()
        },
        7,
    )
    .expect("road network");
    let road_spec = GraphSpec::Road {
        width: road_w as u32,
        height: road_h as u32,
        seed: 7,
    };
    let (ba_n, ba_m) = if smoke { (3_000, 3) } else { (30_000, 5) };
    let ba = barabasi_albert(ba_n, ba_m, 11).expect("barabasi-albert");
    let ba_spec = GraphSpec::Ba {
        n: ba_n as u32,
        m: ba_m as u32,
        seed: 11,
    };

    let mut rows = Vec::new();
    for (graph_name, g, spec) in [("road", &road, &road_spec), ("ba", &ba, &ba_spec)] {
        for threads in thread_axis {
            // The recovery drill is a single-threaded multi-worker TCP run;
            // attach it to the single-threaded row of each snapshot-capable
            // algorithm.
            let mut sssp = run_case(
                "sssp",
                graph_name,
                SsspProgram,
                &SsspQuery::new(0),
                g,
                k,
                threads,
                reps,
            );
            if threads == 1 {
                sssp.recovery_ms = Some(recovery_best_ms("sssp", spec, k as u32, 1, reps));
                sssp.recovery_k4_ms = Some(recovery_best_ms("sssp", spec, k as u32, 4, reps));
                let (p50, p99) = service_percentiles(g, "sssp", k, service_queries);
                sssp.service_p50_ms = Some(p50);
                sssp.service_p99_ms = Some(p99);
                sssp.inc_ms = Some(incremental_best_ms(
                    "sssp",
                    SsspProgram,
                    &SsspQuery::new(0),
                    g,
                    k,
                    &weighted_insert_batch(g, k),
                    reps,
                    |warm, cold| warm == cold,
                ));
                eprintln!(
                    "    sssp on {graph_name}: inc={:.2}ms (cold wall={:.2}ms)",
                    sssp.inc_ms.unwrap(),
                    sssp.wall_ms
                );
            }
            rows.push(sssp);
            let mut cc = run_case("cc", graph_name, CcProgram, &CcQuery, g, k, threads, reps);
            if threads == 1 {
                cc.recovery_ms = Some(recovery_best_ms("cc", spec, k as u32, 1, reps));
                cc.recovery_k4_ms = Some(recovery_best_ms("cc", spec, k as u32, 4, reps));
                let (p50, p99) = service_percentiles(g, "cc", k, service_queries);
                cc.service_p50_ms = Some(p50);
                cc.service_p99_ms = Some(p99);
                cc.inc_ms = Some(incremental_best_ms(
                    "cc",
                    CcProgram,
                    &CcQuery,
                    g,
                    k,
                    &weighted_insert_batch(g, k),
                    reps,
                    |warm, cold| warm == cold,
                ));
                eprintln!(
                    "      cc on {graph_name}: inc={:.2}ms (cold wall={:.2}ms)",
                    cc.inc_ms.unwrap(),
                    cc.wall_ms
                );
            }
            rows.push(cc);
            let mut pagerank = run_case(
                "pagerank",
                graph_name,
                PageRankProgram::new(g.num_vertices()),
                &PageRankQuery::default(),
                g,
                k,
                threads,
                reps,
            );
            if threads == 1 {
                pagerank.recovery_ms = Some(recovery_best_ms("pagerank", spec, k as u32, 1, reps));
                pagerank.recovery_k4_ms =
                    Some(recovery_best_ms("pagerank", spec, k as u32, 4, reps));
                let (p50, p99) = service_percentiles(g, "pagerank", k, service_queries);
                pagerank.service_p50_ms = Some(p50);
                pagerank.service_p99_ms = Some(p99);
                // PageRank's quantized grid admits a cluster of fixpoints, so
                // the warm answer is checked against the cold one within the
                // documented cluster radius rather than bit for bit.
                let batch = weighted_insert_batch(g, k);
                let radius =
                    PageRankQuery::default().fixpoint_cluster_radius(g.num_edges() + batch.len());
                pagerank.inc_ms = Some(incremental_best_ms(
                    "pagerank",
                    PageRankProgram::new(g.num_vertices()),
                    &PageRankQuery::default(),
                    g,
                    k,
                    &batch,
                    reps,
                    |warm, cold| {
                        warm.len() == cold.len()
                            && cold
                                .iter()
                                .all(|(v, r)| warm.get(v).is_some_and(|x| (x - r).abs() <= radius))
                    },
                ));
                eprintln!(
                    "pagerank on {graph_name}: inc={:.2}ms (cold wall={:.2}ms)",
                    pagerank.inc_ms.unwrap(),
                    pagerank.wall_ms
                );
            }
            rows.push(pagerank);
        }
    }

    // Pattern-matching and keyword-search classes on a labeled social graph.
    let social = labeled_social(
        if smoke {
            SocialGraphConfig {
                num_persons: 600,
                num_products: 12,
                ..Default::default()
            }
        } else {
            SocialGraphConfig {
                num_persons: 6_000,
                num_products: 40,
                ..Default::default()
            }
        },
        21,
    )
    .expect("labeled social graph");
    let pattern = PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
        .edge_labeled(0, 1, "follows")
        .edge_labeled(1, 2, "recommends");
    for threads in thread_axis {
        let mut sim = run_case(
            "sim",
            "social",
            SimProgram,
            &SimQuery::new(pattern.clone()),
            &social,
            k,
            threads,
            reps,
        );
        if threads == 1 {
            sim.inc_ms = Some(incremental_best_ms(
                "sim",
                SimProgram,
                &SimQuery::new(pattern.clone()),
                &social,
                k,
                &delete_batch(&social, 6),
                reps,
                |warm, cold| warm == cold,
            ));
            eprintln!(
                "     sim on social: inc={:.2}ms (cold wall={:.2}ms)",
                sim.inc_ms.unwrap(),
                sim.wall_ms
            );
        }
        rows.push(sim);
    }
    // SubIso gets its own (smaller) graph and a radius-1 star pattern: with
    // radius ≥ 2 the protocol replicates whole 2-hop neighbourhoods of a
    // hubby social graph per border vertex, which measures the replication
    // volume rather than the matcher.
    let subiso_social = labeled_social(
        if smoke {
            SocialGraphConfig {
                num_persons: 250,
                num_products: 8,
                ..Default::default()
            }
        } else {
            SocialGraphConfig {
                num_persons: 1_500,
                num_products: 20,
                ..Default::default()
            }
        },
        23,
    )
    .expect("labeled social graph");
    let star = PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
        .edge_labeled(0, 1, "follows")
        .edge_labeled(0, 2, "recommends");
    rows.push(run_case(
        "subiso",
        "social",
        SubIsoProgram,
        &SubIsoQuery::new(star).with_max_matches(2_000),
        &subiso_social,
        k,
        1,
        reps,
    ));
    rows.push(run_case(
        "keyword",
        "social",
        KeywordProgram,
        &KeywordQuery::new(["phone", "laptop"], f64::INFINITY),
        &social,
        k,
        1,
        reps,
    ));

    // Collaborative filtering on a bipartite rating graph.
    let ratings = if smoke {
        bipartite_ratings(300, 80, 15, 4, 29)
    } else {
        bipartite_ratings(2_000, 400, 25, 8, 29)
    }
    .expect("bipartite ratings");
    rows.push(run_case(
        "cf",
        "ratings",
        CfProgram::new(ratings.num_users),
        &CfQuery {
            epochs: if smoke { 5 } else { 10 },
            ..Default::default()
        },
        &ratings.graph,
        k,
        1,
        reps,
    ));

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(json, "  {}{}", row.to_json(), sep).expect("write row");
    }
    json.push_str("]\n");
    std::fs::write(out_file, &json).expect("write bench json");
    // CI derives the artifact name from this line; keep the format stable.
    eprintln!("wrote {out_file}");
    println!("{json}");
}
