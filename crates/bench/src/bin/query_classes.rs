//! Reproduces the §3(3) "registered query classes" experiment: every PIE
//! program in the library (SSSP, CC, Sim, SubIso, Keyword, CF, PageRank,
//! GPAR marketing) run under GRAPE on its natural workload, reporting the
//! per-class cost breakdown of the analytics panel.
//!
//! Usage: `cargo run --release -p grape-bench --bin query_classes [workers] [scale]`

use grape_algo::{
    CcProgram, CcQuery, CfProgram, CfQuery, KeywordProgram, KeywordQuery, MarketingProgram,
    MarketingQuery, PageRankProgram, PageRankQuery, SimProgram, SimQuery, SsspProgram, SsspQuery,
    SubIsoProgram, SubIsoQuery,
};
use grape_bench::{labeled_network, social_network, table1_road_network};
use grape_core::{GrapeEngine, RunStats};
use grape_graph::generators::bipartite_ratings;
use grape_graph::labels::PatternGraph;
use grape_partition::BuiltinStrategy;

fn row(name: &str, stats: &RunStats) {
    println!(
        "{:<16} {:>10.3} {:>10.3} {:>10.3} {:>12} {:>12} {:>12.4}",
        name,
        stats.wall_time.as_secs_f64(),
        stats.peval_seconds,
        stats.inceval_seconds,
        stats.supersteps,
        stats.messages,
        stats.megabytes()
    );
}

fn main() {
    let workers = grape_bench::workers_from_args(8);
    let scale = grape_bench::scale_from_args(1);
    let road = table1_road_network(72 * scale);
    let social = social_network(10_000 * scale);
    // The labeled workload is intentionally smaller: SubIso's border
    // neighbourhood exchange is the most expensive PIE program in the
    // library (see DESIGN.md), and the demo runs it on pattern-sized
    // neighbourhoods rather than the full Weibo graph.
    let labeled = labeled_network(600 * scale, 8);
    let ratings = bipartite_ratings(1_500 * scale, 300, 20, 8, 7).expect("valid config");

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "class", "total(s)", "peval(s)", "inceval(s)", "supersteps", "messages", "comm(MB)"
    );

    let road_assignment = BuiltinStrategy::MetisLike.partition(&road, workers);
    let sssp = GrapeEngine::new(SsspProgram)
        .run_on_graph(&SsspQuery::new(0), &road, &road_assignment)
        .expect("sssp");
    row("SSSP", &sssp.stats);

    let social_assignment = BuiltinStrategy::Fennel.partition(&social, workers);
    let cc = GrapeEngine::new(CcProgram)
        .run_on_graph(&CcQuery, &social, &social_assignment)
        .expect("cc");
    row("CC", &cc.stats);

    let pr = GrapeEngine::new(PageRankProgram::new(social.num_vertices()))
        .run_on_graph(
            &PageRankQuery {
                max_local_iterations: 20,
                tolerance: 1e-4,
                ..Default::default()
            },
            &social,
            &social_assignment,
        )
        .expect("pagerank");
    row("PageRank", &pr.stats);

    let labeled_assignment = BuiltinStrategy::Fennel.partition(&labeled, workers);
    let pattern = PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
        .edge_labeled(0, 1, "follows")
        .edge_labeled(1, 2, "recommends");

    let sim = GrapeEngine::new(SimProgram)
        .run_on_graph(
            &SimQuery::new(pattern.clone()),
            &labeled,
            &labeled_assignment,
        )
        .expect("sim");
    row("Sim", &sim.stats);

    let subiso = GrapeEngine::new(SubIsoProgram)
        .run_on_graph(
            &SubIsoQuery::new(pattern).with_max_matches(2_000),
            &labeled,
            &labeled_assignment,
        )
        .expect("subiso");
    row("SubIso", &subiso.stats);

    let keyword = GrapeEngine::new(KeywordProgram)
        .run_on_graph(
            &KeywordQuery::new(["phone", "laptop"], f64::INFINITY),
            &labeled,
            &labeled_assignment,
        )
        .expect("keyword");
    row("Keyword", &keyword.stats);

    let cf_assignment = BuiltinStrategy::Hash.partition(&ratings.graph, workers);
    let cf = GrapeEngine::new(CfProgram::new(ratings.num_users))
        .run_on_graph(
            &CfQuery {
                epochs: 8,
                ..Default::default()
            },
            &ratings.graph,
            &cf_assignment,
        )
        .expect("cf");
    row("CF", &cf.stats);

    let marketing = GrapeEngine::new(MarketingProgram)
        .run_on_graph(
            &MarketingQuery::new(600 * scale as u64),
            &labeled,
            &labeled_assignment,
        )
        .expect("marketing");
    row("GPAR-marketing", &marketing.stats);
}
