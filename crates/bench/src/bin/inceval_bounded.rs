//! Reproduces the §2.2 boundedness claim: the cost of IncEval is a function
//! of the size of the change (`|M| + |ΔO|`), not of the fragment size `|F|`.
//!
//! Two sweeps are reported:
//!
//! 1. Fixed change size, growing fragment: the incremental cost stays flat
//!    while recomputation from scratch grows with the fragment.
//! 2. Fixed fragment, growing change size: the incremental cost grows with
//!    the change.
//!
//! Usage: `cargo run --release -p grape-bench --bin inceval_bounded`

use grape_algo::sssp::{incremental_sssp, sequential_sssp};
use grape_graph::generators::{road_network, RoadNetworkConfig};
use std::time::Instant;

fn timed<F: FnMut() -> usize>(mut f: F) -> (f64, usize) {
    let start = Instant::now();
    let touched = f();
    (start.elapsed().as_secs_f64() * 1_000.0, touched)
}

fn main() {
    println!("sweep 1: fixed change, growing fragment (|F|)");
    println!(
        "{:>12} {:>14} {:>18} {:>18}",
        "|F| (vertices)", "touched (|ΔO|)", "inceval (ms)", "recompute (ms)"
    );
    for side in [32usize, 64, 96, 128, 160] {
        let graph = road_network(
            RoadNetworkConfig {
                width: side,
                height: side,
                removal_prob: 0.0,
                shortcut_prob: 0.0,
                ..Default::default()
            },
            7,
        )
        .expect("valid config");
        let base = sequential_sssp(&graph, 0);
        // The change: a slightly better distance for one vertex near the far
        // corner (small |M|, small |ΔO|).
        let far = (side * side - 2) as u64;
        let seed = base.get(&far).copied().unwrap_or(1000.0) * 0.999;
        let (inc_ms, touched) = timed(|| {
            let mut dist = base.clone();
            incremental_sssp(&graph, &mut dist, &[(far, seed)])
        });
        let (full_ms, _) = timed(|| sequential_sssp(&graph, 0).len());
        println!(
            "{:>12} {:>14} {:>18.3} {:>18.3}",
            graph.num_vertices(),
            touched,
            inc_ms,
            full_ms
        );
    }

    println!("\nsweep 2: fixed fragment, growing change (|M|)");
    println!(
        "{:>12} {:>14} {:>18}",
        "|M| (seeds)", "touched (|ΔO|)", "inceval (ms)"
    );
    let graph = road_network(
        RoadNetworkConfig {
            width: 128,
            height: 128,
            removal_prob: 0.0,
            shortcut_prob: 0.0,
            ..Default::default()
        },
        7,
    )
    .expect("valid config");
    let base = sequential_sssp(&graph, 0);
    for seeds in [1usize, 4, 16, 64, 256, 1024] {
        let m: Vec<(u64, f64)> = (0..seeds as u64)
            .map(|i| {
                let v = (i * 97) % graph.num_vertices() as u64;
                (v, base.get(&v).copied().unwrap_or(500.0) * 0.5)
            })
            .collect();
        let (inc_ms, touched) = timed(|| {
            let mut dist = base.clone();
            incremental_sssp(&graph, &mut dist, &m)
        });
        println!("{:>12} {:>14} {:>18.3}", seeds, touched, inc_ms);
    }
    println!("\nshape check: sweep 1's inceval column stays flat as |F| grows;");
    println!("sweep 2's cost grows with the change size — IncEval is bounded.");
}
