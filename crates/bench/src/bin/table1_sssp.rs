//! Reproduces **Table 1**: graph traversal (SSSP) on parallel systems —
//! Giraph-like, GraphLab-like, Blogel-like and GRAPE — over a road-network
//! workload, reporting wall time and communication volume.
//!
//! Usage: `cargo run --release -p grape-bench --bin table1_sssp [workers] [grid_side]`

use grape_bench::{print_engine_table, run_table1, table1_road_network, DEFAULT_WORKERS};

fn main() {
    let workers = grape_bench::workers_from_args(DEFAULT_WORKERS);
    let side = grape_bench::scale_from_args(160);
    let graph = table1_road_network(side);
    println!(
        "workload: {}x{} road-network grid, {} vertices, {} edges, {} workers",
        side,
        side,
        graph.num_vertices(),
        graph.num_edges(),
        workers
    );
    let rows = run_table1(&graph, 0, workers);
    print_engine_table("Table 1: SSSP on a road network", &rows);
    let pregel = &rows[0];
    let grape = &rows[3];
    println!(
        "\nshape check: GRAPE vs vertex-centric — {:.1}x faster, {:.0}x fewer supersteps, {:.0}x less communication",
        pregel.seconds / grape.seconds.max(1e-9),
        pregel.supersteps as f64 / grape.supersteps.max(1) as f64,
        pregel.comm_mb / grape.comm_mb.max(1e-9)
    );
}
