//! Criterion bench for the §3(3) partition-strategy experiment: GRAPE SSSP
//! wall time per partition strategy, plus the cost of computing the
//! partitions themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grape_algo::{SsspProgram, SsspQuery};
use grape_bench::social_network;
use grape_core::GrapeEngine;
use grape_partition::BuiltinStrategy;
use std::hint::black_box;

fn bench_partition(c: &mut Criterion) {
    let graph = social_network(5_000);
    let workers = 8;
    let strategies = [
        BuiltinStrategy::MetisLike,
        BuiltinStrategy::Ldg,
        BuiltinStrategy::Fennel,
        BuiltinStrategy::Hash,
    ];

    let mut partition_group = c.benchmark_group("partitioning_social5k");
    partition_group.sample_size(10);
    partition_group.measurement_time(std::time::Duration::from_secs(2));
    partition_group.warm_up_time(std::time::Duration::from_millis(500));
    for strategy in strategies {
        partition_group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, strategy| b.iter(|| black_box(strategy.partition(&graph, workers)).num_assigned()),
        );
    }
    partition_group.finish();

    let mut sssp_group = c.benchmark_group("sssp_by_partition_social5k");
    sssp_group.sample_size(10);
    sssp_group.measurement_time(std::time::Duration::from_secs(2));
    sssp_group.warm_up_time(std::time::Duration::from_millis(500));
    for strategy in strategies {
        let assignment = strategy.partition(&graph, workers);
        sssp_group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &assignment,
            |b, assignment| {
                let engine = GrapeEngine::new(SsspProgram);
                b.iter(|| {
                    let r = engine
                        .run_on_graph(&SsspQuery::new(0), &graph, assignment)
                        .unwrap();
                    black_box(r.stats.messages)
                })
            },
        );
    }
    sssp_group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
