//! Criterion bench for the §2.2 bounded-IncEval claim: incremental SSSP cost
//! as the fragment grows (should stay flat) and as the change grows (should
//! grow), compared against recomputation from scratch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grape_algo::sssp::{incremental_sssp, sequential_sssp};
use grape_graph::generators::{road_network, RoadNetworkConfig};
use std::hint::black_box;

fn grid(side: usize) -> grape_graph::CsrGraph<(), f64> {
    road_network(
        RoadNetworkConfig {
            width: side,
            height: side,
            removal_prob: 0.0,
            shortcut_prob: 0.0,
            ..Default::default()
        },
        7,
    )
    .unwrap()
}

fn bench_inceval(c: &mut Criterion) {
    // Sweep 1: fixed small change, growing fragment.
    let mut group = c.benchmark_group("inceval_fixed_change_growing_fragment");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for side in [32usize, 64, 96] {
        let graph = grid(side);
        let base = sequential_sssp(&graph, 0);
        let far = (side * side - 2) as u64;
        let seed = base.get(&far).copied().unwrap_or(100.0) * 0.999;
        group.bench_with_input(BenchmarkId::new("inceval", side), &side, |b, _| {
            b.iter(|| {
                let mut dist = base.clone();
                black_box(incremental_sssp(&graph, &mut dist, &[(far, seed)]))
            })
        });
        group.bench_with_input(BenchmarkId::new("recompute", side), &side, |b, _| {
            b.iter(|| black_box(sequential_sssp(&graph, 0)).len())
        });
    }
    group.finish();

    // Sweep 2: fixed fragment, growing change.
    let graph = grid(96);
    let base = sequential_sssp(&graph, 0);
    let mut group = c.benchmark_group("inceval_growing_change_fixed_fragment");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for seeds in [1usize, 16, 256] {
        let m: Vec<(u64, f64)> = (0..seeds as u64)
            .map(|i| {
                let v = (i * 97) % graph.num_vertices() as u64;
                (v, base.get(&v).copied().unwrap_or(500.0) * 0.5)
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(seeds), &m, |b, m| {
            b.iter(|| {
                let mut dist = base.clone();
                black_box(incremental_sssp(&graph, &mut dist, m))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inceval);
criterion_main!(benches);
