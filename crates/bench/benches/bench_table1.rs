//! Criterion bench for the Table 1 experiment: SSSP wall time of GRAPE vs
//! the Pregel-like, GAS and Blogel-like engines on a road-network workload.
//! Run `cargo run --release -p grape-bench --bin table1_sssp` for the full
//! table including communication volume.

use criterion::{criterion_group, criterion_main, Criterion};
use grape_algo::{SsspProgram, SsspQuery};
use grape_baseline::{BlockSssp, BlogelEngine, GasEngine, GasSssp, PregelEngine, PregelSssp};
use grape_bench::{table1_assignment, table1_road_network};
use grape_core::GrapeEngine;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let workers = 4;
    let graph = table1_road_network(48);
    let assignment = table1_assignment(&graph, workers);

    let mut group = c.benchmark_group("table1_sssp_road48");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("grape", |b| {
        let engine = GrapeEngine::new(SsspProgram);
        b.iter(|| {
            let r = engine
                .run_on_graph(&SsspQuery::new(0), &graph, &assignment)
                .unwrap();
            black_box(r.output.len())
        })
    });

    group.bench_function("blogel", |b| {
        let engine = BlogelEngine::new();
        b.iter(|| {
            let (states, _) = engine.run(&BlockSssp, &0, &graph, &assignment);
            black_box(states.len())
        })
    });

    group.bench_function("gas_graphlab_like", |b| {
        let engine = GasEngine::new(workers);
        b.iter(|| {
            let (states, _) = engine.run(&GasSssp, &0, &graph);
            black_box(states.len())
        })
    });

    group.bench_function("pregel_giraph_like", |b| {
        let engine = PregelEngine::new(workers);
        b.iter(|| {
            let (states, _) = engine.run(&PregelSssp, &0, &graph);
            black_box(states.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
