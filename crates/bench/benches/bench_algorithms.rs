//! Criterion bench over the registered query classes (the §3(3) library):
//! GRAPE wall time of each PIE program on its natural workload.

use criterion::{criterion_group, criterion_main, Criterion};
use grape_algo::{
    CcProgram, CcQuery, CfProgram, CfQuery, KeywordProgram, KeywordQuery, MarketingProgram,
    MarketingQuery, SimProgram, SimQuery, SsspProgram, SsspQuery, SubIsoProgram, SubIsoQuery,
};
use grape_bench::{labeled_network, social_network, table1_road_network};
use grape_core::GrapeEngine;
use grape_graph::generators::bipartite_ratings;
use grape_graph::labels::PatternGraph;
use grape_partition::BuiltinStrategy;
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let workers = 4;
    let road = table1_road_network(40);
    let social = social_network(2_000);
    let labeled = labeled_network(350, 6);
    let ratings = bipartite_ratings(400, 100, 15, 8, 3).unwrap();
    let pattern = PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
        .edge_labeled(0, 1, "follows")
        .edge_labeled(1, 2, "recommends");

    let road_assignment = BuiltinStrategy::MetisLike.partition(&road, workers);
    let social_assignment = BuiltinStrategy::Fennel.partition(&social, workers);
    let labeled_assignment = BuiltinStrategy::Fennel.partition(&labeled, workers);
    let ratings_assignment = BuiltinStrategy::Hash.partition(&ratings.graph, workers);

    let mut group = c.benchmark_group("query_classes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("sssp_road", |b| {
        let engine = GrapeEngine::new(SsspProgram);
        b.iter(|| {
            black_box(
                engine
                    .run_on_graph(&SsspQuery::new(0), &road, &road_assignment)
                    .unwrap()
                    .output
                    .len(),
            )
        })
    });

    group.bench_function("cc_social", |b| {
        let engine = GrapeEngine::new(CcProgram);
        b.iter(|| {
            black_box(
                engine
                    .run_on_graph(&CcQuery, &social, &social_assignment)
                    .unwrap()
                    .output
                    .len(),
            )
        })
    });

    group.bench_function("sim_labeled", |b| {
        let engine = GrapeEngine::new(SimProgram);
        let query = SimQuery::new(pattern.clone());
        b.iter(|| {
            black_box(
                engine
                    .run_on_graph(&query, &labeled, &labeled_assignment)
                    .unwrap()
                    .output[0]
                    .len(),
            )
        })
    });

    group.bench_function("subiso_labeled", |b| {
        let engine = GrapeEngine::new(SubIsoProgram);
        let query = SubIsoQuery::new(pattern.clone()).with_max_matches(500);
        b.iter(|| {
            black_box(
                engine
                    .run_on_graph(&query, &labeled, &labeled_assignment)
                    .unwrap()
                    .output
                    .len(),
            )
        })
    });

    group.bench_function("keyword_labeled", |b| {
        let engine = GrapeEngine::new(KeywordProgram);
        let query = KeywordQuery::new(["phone", "laptop"], f64::INFINITY);
        b.iter(|| {
            black_box(
                engine
                    .run_on_graph(&query, &labeled, &labeled_assignment)
                    .unwrap()
                    .output
                    .len(),
            )
        })
    });

    group.bench_function("cf_ratings", |b| {
        let engine = GrapeEngine::new(CfProgram::new(ratings.num_users));
        let query = CfQuery {
            epochs: 5,
            ..Default::default()
        };
        b.iter(|| {
            black_box(
                engine
                    .run_on_graph(&query, &ratings.graph, &ratings_assignment)
                    .unwrap()
                    .output
                    .factors
                    .len(),
            )
        })
    });

    group.bench_function("gpar_marketing_labeled", |b| {
        let engine = GrapeEngine::new(MarketingProgram);
        let query = MarketingQuery::new(350);
        b.iter(|| {
            black_box(
                engine
                    .run_on_graph(&query, &labeled, &labeled_assignment)
                    .unwrap()
                    .output
                    .len(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
