//! Criterion bench comparing the engines on the two workload families the
//! paper contrasts: high-diameter road networks (where GRAPE's fragment-level
//! Dijkstra dominates) and low-diameter power-law social graphs (where the
//! gap narrows) — plus GRAPE's scale-up across worker counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grape_algo::{SsspProgram, SsspQuery};
use grape_baseline::{PregelEngine, PregelSssp};
use grape_bench::{social_network, table1_road_network};
use grape_core::GrapeEngine;
use grape_partition::BuiltinStrategy;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let workers = 4;
    let road = table1_road_network(40);
    let social = social_network(3_000);

    let mut group = c.benchmark_group("grape_vs_pregel_by_workload");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, graph) in [("road40", &road), ("social3k", &social)] {
        let assignment = BuiltinStrategy::MetisLike.partition(graph, workers);
        group.bench_with_input(BenchmarkId::new("grape", name), graph, |b, graph| {
            let engine = GrapeEngine::new(SsspProgram);
            b.iter(|| {
                black_box(
                    engine
                        .run_on_graph(&SsspQuery::new(0), graph, &assignment)
                        .unwrap()
                        .stats
                        .supersteps,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("pregel", name), graph, |b, graph| {
            let engine = PregelEngine::new(workers);
            b.iter(|| black_box(engine.run(&PregelSssp, &0, graph).1.supersteps))
        });
    }
    group.finish();

    let mut scale_group = c.benchmark_group("grape_scaleup_road40");
    scale_group.sample_size(10);
    scale_group.measurement_time(std::time::Duration::from_secs(2));
    scale_group.warm_up_time(std::time::Duration::from_millis(500));
    for workers in [1usize, 2, 4, 8] {
        let assignment = BuiltinStrategy::MetisLike.partition(&road, workers);
        scale_group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &assignment,
            |b, assignment| {
                let engine = GrapeEngine::new(SsspProgram);
                b.iter(|| {
                    black_box(
                        engine
                            .run_on_graph(&SsspQuery::new(0), &road, assignment)
                            .unwrap()
                            .output
                            .len(),
                    )
                })
            },
        );
    }
    scale_group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
