//! Offline stand-in for `serde_json`.
//!
//! Renders the serde shim's [`Value`] tree to JSON text and parses it back.
//! Covers the JSON subset GRAPE-RS emits: objects, arrays, strings with
//! standard escapes, integers, floats, booleans and null.

#![warn(missing_docs)]

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Ensure floats survive a round trip as floats.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no infinities/NaN; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_sequence(
            out,
            indent,
            depth,
            '[',
            ']',
            items.iter(),
            |item, out, d| write_value(item, out, indent, d),
        ),
        Value::Object(entries) => write_sequence(
            out,
            indent,
            depth,
            '{',
            '}',
            entries.iter(),
            |(key, val), out, d| {
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, d);
            },
        ),
    }
}

fn write_sequence<I: ExactSizeIterator, F: Fn(I::Item, &mut String, usize)>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    write_item: F,
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(item, out, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of JSON input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not emitted by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 code point.
                    let start = self.pos;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a": [1, 2.5, {"b": "x \"y\""}], "empty": [], "obj": {}}"#;
        let v: Value = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn float_marker_survives() {
        let v = Value::Float(2.0);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "2.0");
    }
}
