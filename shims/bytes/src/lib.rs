//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds without network access, so instead of the real
//! `bytes` dependency this shim provides the tiny subset GRAPE-RS uses: a
//! cheaply clonable, immutable byte container with `from_static`, `len`, and
//! slice access.

#![warn(missing_docs)]

use std::sync::Arc;

/// A cheaply clonable, immutable container of bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self { data: bytes.into() }
    }

    /// Copies `bytes` into a new `Bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self { data: bytes.into() }
    }

    /// Number of bytes in the container.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_round_trip() {
        let s = Bytes::from_static(b"xy");
        assert_eq!(s.len(), 2);
        assert_eq!(&s[..], b"xy");
        let o = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(o.len(), 3);
        assert!(!o.is_empty());
        assert_eq!(o.clone(), o);
    }
}
