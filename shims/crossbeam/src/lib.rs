//! Offline stand-in for `crossbeam`.
//!
//! GRAPE-RS uses only `crossbeam::channel::{unbounded, Sender, Receiver}`;
//! `std::sync::mpsc` provides the same multi-producer unbounded semantics
//! (each endpoint owns its own receiver, so single-consumer is sufficient),
//! so this shim re-exports the std types under the crossbeam module path.

#![warn(missing_docs)]

/// Multi-producer channels (the subset of `crossbeam-channel` GRAPE-RS uses).
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
    }
}
