//! Offline stand-in for `rand`.
//!
//! GRAPE-RS needs *deterministic, seeded* pseudo-randomness for its graph
//! generators — every generator takes an explicit seed so that experiments
//! are reproducible. This shim provides exactly the surface the workspace
//! uses:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! * [`RngExt::random`] (`rng.random::<f64>()` etc.) and
//!   [`RngExt::random_range`] over integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `rand` crate's small RNGs use — so the streams are
//! high quality and, crucially, stable across platforms and releases.

#![warn(missing_docs)]

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from an RNG ("standard" distribution).
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {
        $(impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply method with
/// rejection, so small spans are exactly uniform.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! range_uint {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + uniform_below(rng, span) as $t
                }
            }

            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64) - (start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + uniform_below(rng, span + 1) as $t
                }
            }
        )*
    };
}

range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
                }
            }
        )*
    };
}

range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`[0, 1)` for floats, full width for integers).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.random_range(2usize..9);
            assert!((2..9).contains(&v));
            seen[v - 2] = true;
            let u = rng.random_range(0u64..5);
            assert!(u < 5);
            let i = rng.random_range(-3i64..3);
            assert!((-3..3).contains(&i));
        }
        assert!(seen.iter().all(|s| *s), "all values of a small range hit");
    }

    #[test]
    fn inclusive_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let v = rng.random_range(1u32..=3);
            assert!((1..=3).contains(&v));
        }
    }
}
