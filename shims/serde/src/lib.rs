//! Offline stand-in for `serde`.
//!
//! The workspace builds without network access, so this shim replaces the
//! real `serde` with a small value-tree model sufficient for GRAPE-RS's
//! needs (JSON manifests and assignments in `grape-storage`):
//!
//! * [`Value`] — a JSON-shaped data model;
//! * [`Serialize`] / [`Deserialize`] — conversions to and from [`Value`],
//!   implemented for the std types the workspace serializes and derivable
//!   for structs via the re-exported [`macro@Serialize`] /
//!   [`macro@Deserialize`] derive macros;
//! * the `serde_json` shim crate renders [`Value`] to JSON text and back.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number without a fractional part.
    Int(i128),
    /// JSON number with a fractional part (or exponent).
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes a value of this type from `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::Int(*self as i128)
                }
            }

            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    let n = match v {
                        Value::Int(n) => *n,
                        Value::Float(f) if f.fract() == 0.0 => *f as i128,
                        other => {
                            return Err(DeError::new(format!(
                                "expected integer, found {other:?}"
                            )))
                        }
                    };
                    <$t>::try_from(n).map_err(|_| {
                        DeError::new(format!(
                            "integer {n} out of range for {}",
                            stringify!($t)
                        ))
                    })
                }
            }
        )*
    };
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::Float(*self as f64)
                }
            }

            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    match v {
                        Value::Float(f) => Ok(*f as $t),
                        Value::Int(n) => Ok(*n as $t),
                        other => Err(DeError::new(format!(
                            "expected number, found {other:?}"
                        ))),
                    }
                }
            }
        )*
    };
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array, found {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn to_value(&self) -> Value {
                    Value::Array(vec![$(self.$idx.to_value()),+])
                }
            }

            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    let items = v
                        .as_array()
                        .ok_or_else(|| DeError::new(format!("expected tuple array, found {v:?}")))?;
                    let expected = [$($idx,)+].len();
                    if items.len() != expected {
                        return Err(DeError::new(format!(
                            "expected array of {expected}, found {}",
                            items.len()
                        )));
                    }
                    Ok(($($name::from_value(&items[$idx])?,)+))
                }
            }
        )+
    };
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Types usable as JSON object keys (serialized as strings, like
/// `serde_json` does for integer-keyed maps).
pub trait MapKey: Sized {
    /// Renders the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {
        $(impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError::new(format!("invalid {} map key: {key:?}", stringify!($t)))
                })
            }
        })*
    };
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        // Deterministic output regardless of hash order.
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Object(entries)
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize, S> Deserialize for HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new(format!("expected object, found {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new(format!("expected object, found {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_round_trips() {
        let v: Vec<(u64, Option<String>)> = vec![(1, None), (2, Some("x".into()))];
        let round: Vec<(u64, Option<String>)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(v, round);

        let mut m: HashMap<u64, usize> = HashMap::new();
        m.insert(10, 1);
        m.insert(20, 2);
        let round: HashMap<u64, usize> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(m, round);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::Int(3)).is_err());
        assert!(<Vec<u64>>::from_value(&Value::Null).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
