//! Derive macros for the offline `serde` shim.
//!
//! Supports the shapes GRAPE-RS derives on: non-generic structs with named
//! fields (serialized as JSON objects) and tuple structs (a single field
//! serializes as the inner value, newtype-style; multiple fields as an
//! array). Enums and generic types are rejected with a compile error —
//! extend the parser here if a future type needs them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the struct a derive is applied to.
enum StructShape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(T, U);` — number of fields.
    Tuple(usize),
}

/// Parses `input` (the item a `#[derive(...)]` is attached to) into the
/// struct name and its shape. Panics with a readable message on
/// unsupported input; proc-macro panics surface as compile errors.
fn parse_struct(input: TokenStream) -> (String, StructShape) {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde shim derive: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
            panic!("serde shim derive: enums are not supported; write manual impls")
        }
        other => panic!("serde shim derive: expected `struct`, found {other:?}"),
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct name, found {other:?}"),
    };

    match tokens.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde shim derive: generic structs are not supported ({name})")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            (name, StructShape::Named(parse_named_fields(g.stream())))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            (name, StructShape::Tuple(count_tuple_fields(g.stream())))
        }
        other => panic!("serde shim derive: expected struct body for {name}, found {other:?}"),
    }
}

/// Extracts field names from the brace-delimited body of a named struct.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after {name}, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 0 => {
                            tokens.next();
                            break;
                        }
                        _ => {}
                    }
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
        fields.push(name);
    }
    fields
}

/// Counts the fields of a tuple struct body (top-level comma-separated).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for token in body {
        any = true;
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if any {
        commas + 1
    } else {
        0
    }
}

/// Derives `serde::Serialize` for a struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_struct(input);
    let body = match &shape {
        StructShape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        StructShape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        StructShape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` for a struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_struct(input);
    let body = match &shape {
        StructShape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get_field({f:?}).ok_or_else(|| \
                         ::serde::DeError::new(concat!(\"missing field `\", {f:?}, \"` in {name}\")))?)?"
                    )
                })
                .collect();
            format!(
                "if v.as_object().is_none() {{\n\
                     return Err(::serde::DeError::new(\"expected object for {name}\"));\n\
                 }}\n\
                 Ok(Self {{ {} }})",
                inits.join(", ")
            )
        }
        StructShape::Tuple(1) => "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string(),
        StructShape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                     ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::DeError::new(\"wrong tuple arity for {name}\"));\n\
                 }}\n\
                 Ok(Self({}))",
                items.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated invalid Deserialize impl")
}
