//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks with the `parking_lot` API shape GRAPE-RS uses:
//! `lock()` / `read()` / `write()` return guards directly (poisoned locks are
//! recovered rather than propagated, matching `parking_lot` semantics where
//! poisoning does not exist).

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
