//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API that `tests/property_tests.rs`
//! uses: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, integer
//! range and tuple strategies, [`collection::vec`], the [`proptest!`] macro
//! with `#![proptest_config(...)]`, and the `prop_assert!` family.
//!
//! Differences from the real crate, by design:
//!
//! * cases are generated from a **deterministic seed** derived from the test
//!   name, so failures are reproducible run-to-run;
//! * there is **no shrinking** — the failing case is reported as generated;
//! * a failing `prop_assert!` panics with the assertion message after the
//!   case number.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Deterministic RNG driving test-case generation.
#[derive(Debug, Clone)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner seeded from `seed` (typically a hash of the test
    /// name, so each test gets an independent deterministic stream).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// FNV-1a hash of a test name, used as the deterministic seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().random_range(self.clone())
            }
        })*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }
            }
        )+
    };
}

tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRunner};
    use rand::RngExt;

    /// Strategy for `Option`s whose `Some` payload comes from `S`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` about a quarter of the time and `Some` otherwise,
    /// mirroring `proptest::option::of`'s default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            if runner.rng().random_range(0u8..4) == 0 {
                None
            } else {
                Some(self.inner.generate(runner))
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::RngExt;

    /// Strategy for `Vec`s with element strategy `S` and length in `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                runner.rng().random_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner =
                $crate::TestRunner::new($crate::seed_from_name(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut runner);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut runner = crate::TestRunner::new(1);
        let strat = (1usize..5, 0u64..10).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            let v = strat.generate(&mut runner);
            assert!(v <= 13);
        }
    }

    #[test]
    fn flat_map_uses_outer_value() {
        let mut runner = crate::TestRunner::new(2);
        let strat = (2usize..6)
            .prop_flat_map(|n| crate::collection::vec(0usize..n, 1..4).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut runner);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|x| *x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_cases(a in 0u32..10, b in 0u32..10) {
            prop_assert!(a < 10);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
            if a == 0 {
                return Ok(());
            }
            prop_assert!(a >= 1, "a was {}", a);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(a in 0u32..10) {
                prop_assert!(a > 100);
            }
        }
        always_fails();
    }
}
