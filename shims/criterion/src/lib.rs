//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the GRAPE-RS benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId` and the `criterion_group!` / `criterion_main!` macros — with
//! a simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Each benchmark warms up briefly, then runs batches until the
//! configured measurement time (default 2 s) or sample count is exhausted and
//! reports the mean time per iteration.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` if they prefer.
pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(name, &mut f);
        group.finish();
        self
    }
}

/// A named benchmark id, optionally parameterized (`name/param`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs a benchmark with no input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (printed output is already flushed per benchmark).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        if bencher.iterations == 0 {
            println!("bench {label:<50} (no iterations)");
            return;
        }
        let per_iter = bencher.total.as_secs_f64() / bencher.iterations as f64;
        println!(
            "bench {label:<50} {:>12.3} µs/iter ({} iters)",
            per_iter * 1e6,
            bencher.iterations
        );
    }
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        // Measurement: collect up to sample_size samples within the budget.
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.total += t.elapsed();
            self.iterations += 1;
            if measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(1));
        let mut count = 0u64;
        group.bench_function("noop", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, x| {
            b.iter(|| *x * 2)
        });
        group.finish();
        assert!(count > 0);
    }
}
