//! # GRAPE-RS
//!
//! A Rust reproduction of **GRAPE: Parallelizing Sequential Graph
//! Computations** (Fan, Xu, Wu, Yu, Jiang — PVLDB 10(12), 2017).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`graph`] — CSR graph storage, loaders and synthetic generators.
//! * [`partition`] — partition strategies (hash, 1D/2D, LDG, Fennel,
//!   METIS-like) and fragment construction.
//! * [`comm`] — the in-process message bus standing in for the MPI
//!   controller, with full communication accounting.
//! * [`storage`] — the DFS-simulating fragment store, Index Manager and Load
//!   Balancer.
//! * [`core`] — the PIE programming model and the BSP fixpoint engine.
//! * [`algo`] — registered PIE programs: SSSP, CC, PageRank, Sim, SubIso,
//!   Keyword, CF and the GPAR marketing use case.
//! * [`baseline`] — the Table 1 comparators: Pregel-like, GAS and Blogel-like
//!   engines.
//! * [`worker`] — multi-process workers over the framed wire protocol, and
//!   the resident query service ([`Session`] / [`GrapeService`]).
//!
//! ## Quickstart — a resident session
//!
//! [`Session`] is the unified entry point: load a graph once, keep the
//! fragments resident, and serve a stream of typed queries — concurrently,
//! bit-identical to cold one-shot runs:
//!
//! ```
//! use grape::prelude::*;
//! use grape::{Query, Session, SessionConfig, SessionGraph};
//!
//! let graph = grape::graph::generators::barabasi_albert(300, 2, 7).unwrap();
//! let session = Session::connect(SessionConfig::in_process(4))?;
//! session.load(&SessionGraph::from(graph), BuiltinStrategy::Hash)?;
//!
//! let sssp = session.submit(Query::sssp(0))?;   // two classes in flight
//! let ranks = session.submit(Query::pagerank())?; // over the same fragments
//! println!("{}", sssp.join()?.stats.summary());
//! println!("{}", ranks.join()?.stats.summary());
//! # std::io::Result::Ok(())
//! ```
//!
//! Pass [`SessionConfig::remote`] with daemon endpoints (`grape-worker
//! daemon --listen …`) to serve the same session over framed TCP or
//! Unix-domain sockets, with checkpoint-based worker recovery intact.
//!
//! ## Quickstart — one-shot engine
//!
//! The engine layer remains available for single fixpoints:
//!
//! ```
//! use grape::prelude::*;
//!
//! // A small road-network-like graph.
//! let graph = grape::graph::generators::road_network(
//!     grape::graph::generators::RoadNetworkConfig { width: 16, height: 16, ..Default::default() },
//!     7,
//! ).unwrap();
//!
//! // Partition it into 4 fragments with the METIS-like strategy.
//! let assignment = BuiltinStrategy::MetisLike.partition(&graph, 4);
//!
//! // Plug the sequential Dijkstra + incremental SSSP into GRAPE and run.
//! let engine = GrapeEngine::new(SsspProgram);
//! let result = engine.run_on_graph(&SsspQuery::new(0), &graph, &assignment).unwrap();
//! assert_eq!(result.output[&0], 0.0);
//! println!("{}", result.stats.summary());
//! ```

#![warn(missing_docs)]

pub use grape_algo as algo;
pub use grape_baseline as baseline;
pub use grape_comm as comm;
pub use grape_core as core;
pub use grape_graph as graph;
pub use grape_partition as partition;
pub use grape_storage as storage;
pub use grape_worker as worker;

// The coherent public surface of the service mode, re-exported at the root:
// one import path for connect → load → submit plus the knobs it takes.
pub use grape_algo::{Query, QueryClass, QueryResult};
pub use grape_core::{EngineConfig, EngineConfigBuilder, ExecutionMode, RunStats};
pub use grape_graph::GraphMutation;
pub use grape_partition::BuiltinStrategy;
pub use grape_worker::{
    Endpoint, GrapeService, QueryHandle, QueryOutcome, ServiceHandle, ServiceOptions, Session,
    SessionConfig, SessionGraph, SessionUpdate, UpdateReceipt,
};

/// The most frequently used items, importable with `use grape::prelude::*`.
pub mod prelude {
    pub use grape_algo::{
        CcProgram, CcQuery, CfProgram, CfQuery, Gpar, KeywordProgram, KeywordQuery,
        MarketingProgram, MarketingQuery, PageRankProgram, PageRankQuery, SimProgram, SimQuery,
        SsspProgram, SsspQuery, SubIsoProgram, SubIsoQuery,
    };
    pub use grape_algo::{Query, QueryClass, QueryResult};
    pub use grape_baseline::{BlogelEngine, GasEngine, PregelEngine};
    pub use grape_core::{
        build_fragments, EngineConfig, EngineConfigBuilder, ExecutionMode, Fragment, GrapeEngine,
        GrapeResult, PieContext, PieProgram, RunStats, TransportKind, VertexId,
    };
    pub use grape_graph::{
        CsrGraph, DeltaGraph, DenseBitset, GraphBuilder, GraphMutation, LabeledGraph,
        MutationProfile, VertexDenseMap, WeightedGraph,
    };
    pub use grape_partition::{
        BuiltinStrategy, HashPartitioner, MetisLikePartitioner, PartitionAssignment, Partitioner,
    };
    pub use grape_storage::{FragmentStore, IndexManager};
    pub use grape_worker::{
        QueryHandle, QueryOutcome, Session, SessionConfig, SessionGraph, SessionUpdate,
        UpdateReceipt,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let graph = crate::graph::generators::barabasi_albert(100, 2, 1).unwrap();
        let assignment = BuiltinStrategy::Hash.partition(&graph, 2);
        let result = GrapeEngine::new(CcProgram)
            .run_on_graph(&CcQuery, &graph, &assignment)
            .unwrap();
        assert_eq!(result.output.len(), 100);
    }
}
