//! Cross-crate integration tests: generators → partitioners → fragments →
//! PIE engine → answers, checked against the sequential references for every
//! registered query class.

use grape::algo::{
    cc::sequential_cc, keyword::sequential_keyword, marketing::sequential_marketing,
    sim::sequential_sim, sssp::sequential_sssp, subiso::sequential_subiso,
};
use grape::graph::generators::{
    barabasi_albert, labeled_social, road_network, RoadNetworkConfig, SocialGraphConfig,
};
use grape::graph::labels::PatternGraph;
use grape::prelude::*;

fn road() -> WeightedGraph {
    road_network(
        RoadNetworkConfig {
            width: 28,
            height: 28,
            ..Default::default()
        },
        17,
    )
    .unwrap()
}

#[test]
fn sssp_agrees_with_dijkstra_across_strategies_and_worker_counts() {
    let graph = road();
    let expected = sequential_sssp(&graph, 0);
    for strategy in [
        BuiltinStrategy::Hash,
        BuiltinStrategy::Range,
        BuiltinStrategy::Grid2D,
        BuiltinStrategy::Ldg,
        BuiltinStrategy::Fennel,
        BuiltinStrategy::MetisLike,
    ] {
        for workers in [1, 3, 8] {
            let assignment = strategy.partition(&graph, workers);
            let result = GrapeEngine::new(SsspProgram)
                .run_on_graph(&SsspQuery::new(0), &graph, &assignment)
                .unwrap();
            for (v, d) in &expected {
                let got = result.output.get(v).copied().unwrap_or(f64::INFINITY);
                assert!(
                    (got - d).abs() < 1e-9,
                    "strategy {:?}, {} workers, vertex {v}: {got} vs {d}",
                    strategy,
                    workers
                );
            }
        }
    }
}

#[test]
fn cc_agrees_with_union_find_on_fragmented_power_law_graph() {
    let graph = barabasi_albert(1_500, 3, 23).unwrap();
    let expected = sequential_cc(&graph);
    for workers in [2, 5, 12] {
        let assignment = BuiltinStrategy::Fennel.partition(&graph, workers);
        let result = GrapeEngine::new(CcProgram)
            .run_on_graph(&CcQuery, &graph, &assignment)
            .unwrap();
        for v in graph.vertices() {
            assert_eq!(result.output[&v], expected[&v]);
        }
    }
}

#[test]
fn pattern_queries_agree_with_sequential_references() {
    let graph = labeled_social(
        SocialGraphConfig {
            num_persons: 200,
            num_products: 6,
            ..Default::default()
        },
        9,
    )
    .unwrap();
    let pattern = PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
        .edge_labeled(0, 1, "follows")
        .edge_labeled(1, 2, "recommends");
    let assignment = BuiltinStrategy::MetisLike.partition(&graph, 5);

    // Simulation.
    let sim = GrapeEngine::new(SimProgram)
        .run_on_graph(&SimQuery::new(pattern.clone()), &graph, &assignment)
        .unwrap();
    assert_eq!(sim.output, sequential_sim(&graph, &pattern));

    // Subgraph isomorphism.
    let mut sub = GrapeEngine::new(SubIsoProgram)
        .run_on_graph(&SubIsoQuery::new(pattern.clone()), &graph, &assignment)
        .unwrap()
        .output;
    let mut expected = sequential_subiso(&graph, &pattern);
    sub.sort();
    expected.sort();
    assert_eq!(sub, expected);

    // Keyword search.
    let kq = KeywordQuery::new(["phone", "laptop"], f64::INFINITY);
    let kw = GrapeEngine::new(KeywordProgram)
        .run_on_graph(&kq, &graph, &assignment)
        .unwrap();
    let reference = sequential_keyword(&graph, &kq);
    assert_eq!(kw.output.len(), reference.len());
    for (a, b) in kw.output.iter().zip(reference.iter()) {
        assert_eq!(a.root, b.root);
        assert_eq!(a.distances, b.distances);
    }

    // Marketing rule.
    let mq = MarketingQuery::new(200);
    let mk = GrapeEngine::new(MarketingProgram)
        .run_on_graph(&mq, &graph, &assignment)
        .unwrap();
    assert_eq!(mk.output, sequential_marketing(&graph, &mq));
}

#[test]
fn framed_transport_is_bit_identical_for_every_query_class() {
    // Run every registered PIE program on both transport backends and pin
    // the answers (bit-for-bit) and the superstep/message counts identical.
    // The framed path round-trips each message through the wire codec —
    // including the String-carrying SubIso deltas and the Vec<f64> values of
    // Keyword/CF — so this is the codec exercised by every value type in the
    // repertoire. Inline execution keeps the schedule deterministic.
    fn run_pair<P: PieProgram>(
        make: impl Fn() -> P,
        query: &P::Query,
        graph: &CsrGraph<P::VertexData, P::EdgeData>,
        assignment: &PartitionAssignment,
    ) -> (GrapeResult<P::Output>, GrapeResult<P::Output>) {
        let run = |transport| {
            GrapeEngine::new(make())
                .with_config(
                    EngineConfig::builder()
                        .execution(ExecutionMode::Inline)
                        .transport(transport)
                        .build(),
                )
                .run_on_graph(query, graph, assignment)
                .unwrap()
        };
        let typed = run(TransportKind::InProcess);
        let framed = run(TransportKind::Framed);
        assert_eq!(typed.stats.supersteps, framed.stats.supersteps);
        assert_eq!(typed.stats.messages, framed.stats.messages);
        (typed, framed)
    }

    // --- numeric programs on a weighted graph --------------------------
    let graph = road();
    let assignment = BuiltinStrategy::MetisLike.partition(&graph, 4);

    let (typed, framed) = run_pair(|| SsspProgram, &SsspQuery::new(0), &graph, &assignment);
    assert_eq!(typed.output.len(), framed.output.len());
    for (v, d) in &typed.output {
        assert_eq!(d.to_bits(), framed.output[v].to_bits(), "sssp vertex {v}");
    }

    let (typed, framed) = run_pair(|| CcProgram, &CcQuery, &graph, &assignment);
    assert_eq!(typed.output, framed.output);

    let pr_query = PageRankQuery {
        max_local_iterations: 40,
        ..Default::default()
    };
    let n = graph.num_vertices();
    let (typed, framed) = run_pair(|| PageRankProgram::new(n), &pr_query, &graph, &assignment);
    assert_eq!(typed.output.len(), framed.output.len());
    for (v, r) in &typed.output {
        assert_eq!(
            r.to_bits(),
            framed.output[v].to_bits(),
            "pagerank vertex {v}"
        );
    }

    // CF trains over the same weighted graph's (user, item, rating) edges;
    // its update values are whole Vec<f64> factor vectors.
    let cf_query = CfQuery {
        rank: 4,
        epochs: 4,
        ..Default::default()
    };
    let (typed, framed) = run_pair(|| CfProgram::new(64), &cf_query, &graph, &assignment);
    assert_eq!(
        typed.output.factors, framed.output.factors,
        "cf factor vectors must match bit for bit"
    );

    // --- pattern programs on a labeled graph ---------------------------
    // SubIso deltas carry Strings; Keyword values are distance vectors.
    let social = labeled_social(
        SocialGraphConfig {
            num_persons: 150,
            num_products: 5,
            ..Default::default()
        },
        9,
    )
    .unwrap();
    let pattern = PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
        .edge_labeled(0, 1, "follows")
        .edge_labeled(1, 2, "recommends");
    let social_assignment = BuiltinStrategy::Hash.partition(&social, 3);

    let (typed, framed) = run_pair(
        || SimProgram,
        &SimQuery::new(pattern.clone()),
        &social,
        &social_assignment,
    );
    assert_eq!(typed.output, framed.output);

    let (typed, framed) = run_pair(
        || SubIsoProgram,
        &SubIsoQuery::new(pattern.clone()),
        &social,
        &social_assignment,
    );
    let (mut a, mut b) = (typed.output, framed.output);
    a.sort();
    b.sort();
    assert_eq!(a, b);

    let (typed, framed) = run_pair(
        || KeywordProgram,
        &KeywordQuery::new(["phone", "laptop"], f64::INFINITY),
        &social,
        &social_assignment,
    );
    assert_eq!(typed.output.len(), framed.output.len());
    for (x, y) in typed.output.iter().zip(framed.output.iter()) {
        assert_eq!(x.root, y.root);
        assert_eq!(x.distances, y.distances);
    }

    let (typed, framed) = run_pair(
        || MarketingProgram,
        &MarketingQuery::new(150),
        &social,
        &social_assignment,
    );
    assert_eq!(typed.output, framed.output);
}

#[test]
fn engine_statistics_are_internally_consistent() {
    let graph = road();
    let assignment = BuiltinStrategy::MetisLike.partition(&graph, 6);
    let result = GrapeEngine::new(SsspProgram)
        .run_on_graph(&SsspQuery::new(0), &graph, &assignment)
        .unwrap();
    let stats = &result.stats;
    assert_eq!(stats.history.len(), stats.supersteps);
    assert_eq!(
        stats.history.iter().map(|t| t.messages).sum::<u64>(),
        stats.messages
    );
    assert_eq!(
        stats.history.iter().map(|t| t.bytes).sum::<u64>(),
        stats.bytes
    );
    assert!(stats.history[0].active_workers == 6);
    assert!(stats.peval_seconds >= 0.0 && stats.inceval_seconds >= 0.0);
}

#[test]
fn sssp_publishes_only_changed_border_slots_per_superstep() {
    // A long directed chain split into 8 ranges: the SSSP frontier crosses
    // one fragment boundary per superstep, so only the handful of border
    // vertices around that cut change — while the run as a whole has
    // 2 × 7 = 14 distinct border vertices. The engine must ship exactly the
    // changed slots (each chain border vertex lives on two fragments and the
    // proposer already holds its value, so one copy per changed slot), never
    // republish the full border.
    let mut b = GraphBuilder::<(), f64>::new();
    for v in 0..400u64 {
        b.add_edge(v, v + 1, 1.0);
    }
    let graph = b.build().unwrap();
    let k = 8;
    let assignment = BuiltinStrategy::Range.partition(&graph, k);
    let result = GrapeEngine::new(SsspProgram)
        .run_on_graph(&SsspQuery::new(0), &graph, &assignment)
        .unwrap();
    let total_border_slots = 2 * (k - 1);
    let history = &result.stats.history;
    assert!(history.len() >= k, "the frontier crosses every cut in turn");
    for trace in history {
        assert_eq!(
            trace.published_updates, trace.changed_slots,
            "superstep {}: each changed slot ships exactly one copy",
            trace.superstep
        );
        assert!(
            trace.changed_slots <= 4,
            "superstep {}: only the borders at the frontier's cut may change, got {}",
            trace.superstep,
            trace.changed_slots
        );
        assert!(trace.changed_slots < total_border_slots);
    }
    // The run still visits every border slot overall.
    let touched: usize = history.iter().map(|t| t.changed_slots).sum();
    assert!(touched >= total_border_slots);
    // And the answer is right.
    let expected = sequential_sssp(&graph, 0);
    for (v, d) in &expected {
        assert!((result.output[v] - d).abs() < 1e-9);
    }
}

#[test]
fn grape_and_all_baselines_agree_on_sssp() {
    use grape::baseline::{BlockSssp, BlogelEngine, GasEngine, GasSssp, PregelEngine, PregelSssp};
    let graph = barabasi_albert(600, 3, 31).unwrap();
    let source = 3;
    let assignment = BuiltinStrategy::Hash.partition(&graph, 4);
    let grape_run = GrapeEngine::new(SsspProgram)
        .run_on_graph(&SsspQuery::new(source), &graph, &assignment)
        .unwrap();
    let (pregel, _) = PregelEngine::new(4).run(&PregelSssp, &source, &graph);
    let (gas, _) = GasEngine::new(4).run(&GasSssp, &source, &graph);
    let (blogel, _) = BlogelEngine::new().run(&BlockSssp, &source, &graph, &assignment);
    let expected = sequential_sssp(&graph, source);
    for (v, d) in &expected {
        assert!((grape_run.output[v] - d).abs() < 1e-9);
        assert!((pregel[v] - d).abs() < 1e-9);
        assert!((gas[v] - d).abs() < 1e-9);
        assert!((blogel[v] - d).abs() < 1e-9);
    }
}

#[test]
fn storage_round_trip_feeds_the_engine() {
    let dir = std::env::temp_dir().join(format!("grape_it_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FragmentStore::open(&dir).unwrap();
    let graph = road();
    let assignment = BuiltinStrategy::MetisLike.partition(&graph, 4);
    store
        .save_partitioned("road", &graph, &assignment, "metis-like")
        .unwrap();

    // Reload the fragments from "DFS" and run the query on them directly.
    let fragments = store.load_fragments("road").unwrap();
    let result = GrapeEngine::new(SsspProgram)
        .run(&SsspQuery::new(0), &fragments)
        .unwrap();
    let expected = sequential_sssp(&graph, 0);
    for (v, d) in &expected {
        assert!((result.output[v] - d).abs() < 1e-9);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_balancer_assigns_every_fragment_and_keeps_balance() {
    let graph = barabasi_albert(2_000, 4, 7).unwrap();
    let assignment = BuiltinStrategy::Ldg.partition(&graph, 16);
    let fragments = build_fragments(&graph, &assignment);
    let estimates: Vec<grape::storage::WorkloadEstimate> = fragments
        .iter()
        .map(grape::storage::WorkloadEstimate::of)
        .collect();
    let balanced = grape::storage::balance_fragments(&estimates, 4);
    assert_eq!(balanced.worker_of.len(), 16);
    assert!(balanced.imbalance() < 1.5);
    let hosted: usize = (0..4).map(|w| balanced.fragments_of(w).len()).sum();
    assert_eq!(hosted, 16);
}

#[test]
fn index_manager_supports_pie_program_optimizations() {
    let graph = labeled_social(
        SocialGraphConfig {
            num_persons: 300,
            num_products: 6,
            ..Default::default()
        },
        3,
    )
    .unwrap();
    let manager = IndexManager::new();
    let labels = manager.label_index("social", &graph);
    assert_eq!(labels.vertices_with("product").len(), 6);
    let degrees = manager.degree_index("social", &graph);
    assert!(degrees.top_k(3).len() == 3);
}
