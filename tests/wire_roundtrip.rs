//! Property tests of the framed wire codec: arbitrary coordinator↔worker
//! messages encode → decode to equal values, framed sizes are exactly
//! accounted, and corrupted frames (truncation, trailing garbage, bad
//! headers) surface as typed errors instead of bogus messages or panics.

use grape::comm::wire::{self, Wire, WireError, WireReader, HEADER_LEN};
use grape::comm::MessageSize;
use grape::core::message::{CheckpointState, CoordCommand, WorkerReport};
use grape::core::ship::{decode_fragment_parts, encode_fragment_parts, TAG_FRAGMENT};
use grape::partition::FragmentParts;
use proptest::prelude::*;

/// Strategy: an arbitrary f64 from raw bits — covers infinities, NaNs and
/// subnormals, where a lossy codec would betray itself first.
fn arb_f64_bits() -> impl Strategy<Value = f64> {
    (0u64..u64::MAX).prop_map(f64::from_bits)
}

fn arb_slot_values(max_len: usize) -> impl Strategy<Value = Vec<(u32, f64)>> {
    proptest::collection::vec((0u32..1_000_000, arb_f64_bits()), 0..max_len)
}

/// Strategy: an optional recovery checkpoint — opaque partial bytes plus
/// sparse border values.
fn arb_checkpoint() -> impl Strategy<Value = Option<CheckpointState<f64>>> {
    proptest::option::of(
        (
            proptest::collection::vec(0u8..255, 0..48),
            proptest::collection::vec(proptest::option::of(arb_f64_bits()), 0..12),
        )
            .prop_map(|(partial, border)| CheckpointState { partial, border }),
    )
}

/// Strategy: arbitrary flattened fragment parts — the codec must roundtrip
/// any well-typed payload, whether or not it is a structurally valid graph
/// (structural validation is [`Fragment::from_parts`]' job, not the wire's).
fn arb_fragment_parts() -> impl Strategy<Value = FragmentParts<(), f64>> {
    let vid = 0u64..200;
    (
        (
            (0usize..8, 1usize..8),
            proptest::collection::vec(vid.clone().prop_map(|v| (v, ())), 0..16),
            proptest::collection::vec((vid.clone(), vid.clone(), arb_f64_bits()), 0..24),
        ),
        (
            proptest::collection::vec(vid.clone(), 0..16),
            proptest::collection::vec(vid.clone(), 0..16),
            proptest::collection::vec((vid.clone(), 0u32..8), 0..16),
            proptest::collection::vec((vid, proptest::collection::vec(0u32..8, 0..4)), 0..8),
        ),
    )
        .prop_map(
            |(((id, num_fragments), vertices, edges), (inner, outer, outer_owner, mirrored_at))| {
                FragmentParts {
                    id,
                    num_fragments,
                    vertices,
                    edges,
                    inner,
                    outer,
                    outer_owner,
                    mirrored_at,
                }
            },
        )
}

fn arb_command() -> impl Strategy<Value = CoordCommand<f64>> {
    (
        0usize..4,
        0usize..200_000,
        arb_slot_values(24),
        arb_checkpoint(),
    )
        .prop_map(|(kind, superstep, updates, checkpoint)| match kind {
            0 => CoordCommand::Init {
                border_slots: updates.iter().map(|&(s, _)| s).collect(),
            },
            1 => CoordCommand::IncEval { superstep, updates },
            2 => CoordCommand::Resume {
                superstep,
                border_slots: updates.iter().map(|&(s, _)| s).collect(),
                checkpoint,
            },
            _ => CoordCommand::Finish,
        })
}

fn arb_report() -> impl Strategy<Value = WorkerReport<f64>> {
    (
        0usize..200_000,
        arb_slot_values(24),
        proptest::collection::vec((0u64..5_000, arb_f64_bits()), 0..8),
        arb_checkpoint(),
        0u64..u64::MAX,
    )
        .prop_map(
            |(superstep, changes, strays, checkpoint, eval_bits)| WorkerReport::Done {
                superstep,
                changes,
                strays,
                checkpoint,
                // Timings are f64s too; use finite ones so PartialEq is reflexive.
                eval_seconds: (eval_bits % 1_000_000) as f64 * 1e-6,
            },
        )
}

/// NaN-tolerant equality: values equal, or both NaN with the same bits.
fn values_equal(a: f64, b: f64) -> bool {
    a == b || a.to_bits() == b.to_bits()
}

fn checkpoints_equal(a: &Option<CheckpointState<f64>>, b: &Option<CheckpointState<f64>>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            x.partial == y.partial
                && x.border.len() == y.border.len()
                && x.border.iter().zip(&y.border).all(|(l, r)| match (l, r) {
                    (None, None) => true,
                    (Some(l), Some(r)) => values_equal(*l, *r),
                    _ => false,
                })
        }
        _ => false,
    }
}

fn commands_equal(a: &CoordCommand<f64>, b: &CoordCommand<f64>) -> bool {
    match (a, b) {
        (
            CoordCommand::Init { border_slots: left },
            CoordCommand::Init {
                border_slots: right,
            },
        ) => left == right,
        (
            CoordCommand::IncEval {
                superstep: s1,
                updates: u1,
            },
            CoordCommand::IncEval {
                superstep: s2,
                updates: u2,
            },
        ) => {
            s1 == s2
                && u1.len() == u2.len()
                && u1
                    .iter()
                    .zip(u2)
                    .all(|(&(sa, va), &(sb, vb))| sa == sb && values_equal(va, vb))
        }
        (
            CoordCommand::Resume {
                superstep: s1,
                border_slots: b1,
                checkpoint: c1,
            },
            CoordCommand::Resume {
                superstep: s2,
                border_slots: b2,
                checkpoint: c2,
            },
        ) => s1 == s2 && b1 == b2 && checkpoints_equal(c1, c2),
        (CoordCommand::Finish, CoordCommand::Finish) => true,
        _ => false,
    }
}

fn reports_equal(a: &WorkerReport<f64>, b: &WorkerReport<f64>) -> bool {
    let WorkerReport::Done {
        superstep: s1,
        changes: c1,
        strays: y1,
        checkpoint: k1,
        eval_seconds: e1,
    } = a;
    let WorkerReport::Done {
        superstep: s2,
        changes: c2,
        strays: y2,
        checkpoint: k2,
        eval_seconds: e2,
    } = b;
    s1 == s2
        && values_equal(*e1, *e2)
        && checkpoints_equal(k1, k2)
        && c1.len() == c2.len()
        && c1
            .iter()
            .zip(c2)
            .all(|(&(sa, va), &(sb, vb))| sa == sb && values_equal(va, vb))
        && y1.len() == y2.len()
        && y1
            .iter()
            .zip(y2)
            .all(|(&(sa, va), &(sb, vb))| sa == sb && values_equal(va, vb))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn commands_roundtrip_through_the_codec(command in arb_command()) {
        let mut frame = Vec::new();
        command.encode_frame(&mut frame);
        prop_assert_eq!(
            frame.len(),
            command.size_bytes() + CoordCommand::<f64>::WIRE_OVERHEAD,
            "framed size must be estimate + header, exactly"
        );
        let (back, consumed) = CoordCommand::<f64>::decode_frame(&frame)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(consumed, frame.len());
        prop_assert!(commands_equal(&back, &command), "{:?} != {:?}", back, command);
    }

    #[test]
    fn reports_roundtrip_through_the_codec(report in arb_report()) {
        let mut frame = Vec::new();
        report.encode_frame(&mut frame);
        prop_assert_eq!(
            frame.len(),
            report.size_bytes() + WorkerReport::<f64>::WIRE_OVERHEAD,
            "framed size must be estimate + header + eval_seconds, exactly"
        );
        let (back, consumed) = WorkerReport::<f64>::decode_frame(&frame)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(consumed, frame.len());
        prop_assert!(reports_equal(&back, &report), "{:?} != {:?}", back, report);
    }

    #[test]
    fn truncated_frames_never_decode(command in arb_command(), cut_fraction in 0usize..100) {
        let mut frame = Vec::new();
        command.encode_frame(&mut frame);
        // Cut anywhere strictly inside the frame.
        let cut = cut_fraction * frame.len() / 100;
        prop_assert!(cut < frame.len());
        match CoordCommand::<f64>::decode_frame(&frame[..cut]) {
            Err(WireError::Truncated { needed, have }) => {
                prop_assert!(have < needed, "Truncated{{needed {needed}, have {have}}}");
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "cut at {cut}/{} must be Truncated, got {other:?}",
                    frame.len()
                )))
            }
        }
    }

    #[test]
    fn trailing_garbage_inside_the_payload_is_rejected(
        report in arb_report(),
        garbage in proptest::collection::vec(0u8..255, 1..16),
    ) {
        // Inflate the declared payload length and append garbage: the frame
        // is self-consistent at the framing layer, so the *message* decoder
        // must notice the leftover bytes.
        let mut frame = Vec::new();
        report.encode_frame(&mut frame);
        let declared = u32::from_le_bytes(frame[8..12].try_into().unwrap());
        frame.extend_from_slice(&garbage);
        frame[8..12].copy_from_slice(&(declared + garbage.len() as u32).to_le_bytes());
        match WorkerReport::<f64>::decode_frame(&frame) {
            Err(WireError::TrailingBytes { count }) => {
                prop_assert_eq!(count, garbage.len());
            }
            // Garbage may also make a field decode fail early (e.g. an
            // inflated vector length hitting the end) — also a hard error.
            Err(_) => {}
            Ok(_) => {
                return Err(TestCaseError::fail(
                    "garbage-extended frame decoded cleanly".to_string(),
                ))
            }
        }
    }

    #[test]
    fn garbage_after_a_frame_stays_out_of_the_message(
        command in arb_command(),
        garbage in proptest::collection::vec(0u8..255, 0..32),
    ) {
        // Bytes *after* a well-formed frame belong to the next frame; the
        // decoder must consume exactly its own frame and not look at them.
        let mut stream = Vec::new();
        command.encode_frame(&mut stream);
        let frame_len = stream.len();
        stream.extend_from_slice(&garbage);
        let (back, consumed) = CoordCommand::<f64>::decode_frame(&stream)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(consumed, frame_len);
        prop_assert!(commands_equal(&back, &command));
    }

    #[test]
    fn corrupting_any_header_byte_is_detected_or_changes_framing(
        command in arb_command(),
        byte in 0usize..8,
        flip in 1u8..255,
    ) {
        // Flipping magic or version must produce a typed header error.
        // (Bytes 8+ are the length, whose corruption surfaces as
        // Truncated / TrailingBytes through the message decoder.)
        let mut frame = Vec::new();
        command.encode_frame(&mut frame);
        frame[byte] ^= flip;
        match (byte, CoordCommand::<f64>::decode_frame(&frame)) {
            (0 | 1, Err(WireError::BadMagic { .. })) => {}
            (2, Err(WireError::BadVersion { .. })) => {}
            (3, Err(WireError::BadTag { .. })) => {}
            // A tag flip can land on another *valid* tag; the payload then
            // fails to parse (or, for Finish-sized bodies, parses as a
            // different message — framing cannot defend against that, which
            // is exactly why the tag space is kept sparse).
            (3, _) => {}
            // Bytes 4..8 are the run epoch: invisible to the epoch-agnostic
            // decoder, but an epoch-fencing receiver must reject the frame.
            (4..=7, decoded) => {
                prop_assert!(decoded.is_ok(), "epoch is not part of framing");
                let (_, epoch, _, _) = wire::decode_frame_epoch(&frame)
                    .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
                // The flip must have changed the epoch away from 0.
                prop_assert_ne!(epoch, 0);
                prop_assert!(matches!(
                    wire::check_epoch(0, epoch),
                    Err(WireError::StaleEpoch { expected: 0, .. })
                ));
            }
            (b, other) => {
                return Err(TestCaseError::fail(format!(
                    "header byte {b} corrupt, expected typed error, got {other:?}"
                )))
            }
        }
    }

    #[test]
    fn epochs_roundtrip_and_mismatches_are_fenced(
        command in arb_command(),
        epoch in 0u32..u32::MAX,
        other in 0u32..u32::MAX,
    ) {
        // Re-frame the command's payload under an arbitrary epoch: the epoch
        // rides the header untouched, and a receiver fencing on a different
        // epoch rejects the frame with a typed error.
        let mut plain = Vec::new();
        command.encode_frame(&mut plain);
        let (tag, body, _) = wire::decode_frame(&plain)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        let mut frame = Vec::new();
        wire::encode_frame_with_epoch(tag, epoch, &mut frame, |out| {
            out.extend_from_slice(body);
        });
        let (tag_back, epoch_back, body_back, consumed) = wire::decode_frame_epoch(&frame)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(tag_back, tag);
        prop_assert_eq!(epoch_back, epoch);
        prop_assert_eq!(consumed, frame.len());
        let back = CoordCommand::<f64>::decode_body(tag_back, body_back)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert!(commands_equal(&back, &command));
        match wire::check_epoch(other, epoch) {
            Ok(()) => prop_assert_eq!(other, epoch),
            Err(WireError::StaleEpoch { expected, found }) => {
                prop_assert_ne!(other, epoch);
                prop_assert_eq!(expected, other);
                prop_assert_eq!(found, epoch);
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    #[test]
    fn shipped_fragments_roundtrip_under_any_epoch(
        parts in arb_fragment_parts(),
        epoch in 0u32..u32::MAX,
        other in 0u32..u32::MAX,
    ) {
        // The fragment-shipping frame of the recovery handshake: encode under
        // an arbitrary run epoch, decode bit-exactly, and verify a receiver
        // fencing on a different epoch rejects the frame.
        let mut frame = Vec::new();
        encode_fragment_parts(&parts, epoch, &mut frame);
        let (tag, epoch_back, body, consumed) = wire::decode_frame_epoch(&frame)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(tag, TAG_FRAGMENT);
        prop_assert_eq!(epoch_back, epoch);
        prop_assert_eq!(consumed, frame.len());
        let back: FragmentParts<(), f64> = decode_fragment_parts(tag, body)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back, parts);
        match wire::check_epoch(other, epoch) {
            Ok(()) => prop_assert_eq!(other, epoch),
            Err(WireError::StaleEpoch { expected, found }) => {
                prop_assert_ne!(other, epoch);
                prop_assert_eq!(expected, other);
                prop_assert_eq!(found, epoch);
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }

    #[test]
    fn truncated_fragment_frames_never_decode(
        parts in arb_fragment_parts(),
        cut_fraction in 0usize..100,
    ) {
        let mut frame = Vec::new();
        encode_fragment_parts(&parts, 3, &mut frame);
        let cut = cut_fraction * frame.len() / 100;
        prop_assert!(cut < frame.len());
        match wire::decode_frame_epoch(&frame[..cut]) {
            Err(WireError::Truncated { needed, have }) => {
                prop_assert!(have < needed, "Truncated{{needed {needed}, have {have}}}");
            }
            other => {
                return Err(TestCaseError::fail(format!(
                    "cut at {cut}/{} must be Truncated, got {other:?}",
                    frame.len()
                )))
            }
        }
    }

    #[test]
    fn fragment_decoder_rejects_foreign_tags(
        parts in arb_fragment_parts(),
        raw_tag in 0u8..255,
    ) {
        // Remap the one honest value: every tag under test must be foreign.
        let tag = if raw_tag == TAG_FRAGMENT { 0x00 } else { raw_tag };
        // The body is valid; only the tag lies. The decoder must refuse
        // rather than reinterpret another frame type as a fragment.
        let mut frame = Vec::new();
        encode_fragment_parts(&parts, 0, &mut frame);
        let (_, body, _) = wire::decode_frame(&frame)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        match decode_fragment_parts::<(), f64>(tag, body) {
            Err(WireError::BadTag { found }) => prop_assert_eq!(found, tag),
            other => {
                return Err(TestCaseError::fail(format!(
                    "tag {tag:#04x} must be BadTag, got {other:?}"
                )))
            }
        }
    }

    #[test]
    fn value_payloads_roundtrip_bit_exactly(values in arb_slot_values(64)) {
        // The payload layer on its own: (u32, f64) slot vectors are the bulk
        // of every superstep.
        let bytes = values.encode_to_vec();
        prop_assert_eq!(bytes.len(), values.size_bytes());
        let mut reader = WireReader::new(&bytes);
        let back = Vec::<(u32, f64)>::decode(&mut reader)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        reader.finish().map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(back.len(), values.len());
        for (&(sa, va), &(sb, vb)) in back.iter().zip(&values) {
            prop_assert_eq!(sa, sb);
            prop_assert_eq!(va.to_bits(), vb.to_bits(), "f64 bits must survive");
        }
    }
}

#[test]
fn frame_header_layout_is_pinned() {
    // The on-wire header is a public contract (README "Wire format"); changing
    // it must be a conscious, versioned decision.
    let mut frame = Vec::new();
    CoordCommand::<f64>::Finish.encode_frame(&mut frame);
    assert_eq!(HEADER_LEN, 12);
    assert_eq!(&frame[0..2], b"GW", "magic");
    assert_eq!(frame[2], wire::VERSION, "version");
    assert_eq!(frame[3], grape::core::message::TAG_FINISH, "tag");
    assert_eq!(
        u32::from_le_bytes(frame[4..8].try_into().unwrap()),
        0,
        "little-endian run epoch (0 outside recovery)"
    );
    assert_eq!(
        u32::from_le_bytes(frame[8..12].try_into().unwrap()),
        1,
        "little-endian payload length"
    );
    assert_eq!(frame.len(), HEADER_LEN + 1);
}
