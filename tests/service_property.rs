//! Property test: the resident `Session` facade answers every query class
//! bit-identically to a cold one-shot engine run, across random graphs,
//! partition strategies and worker counts — the service-mode face of the
//! Assurance Theorem's observable consequence.

use grape::prelude::*;
use grape::{Query, SessionGraph};
use proptest::prelude::*;
use std::collections::HashMap;

/// Strategy: a random weighted edge list over `n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = WeightedGraph> {
    (2..max_n, 1..max_m).prop_flat_map(|(n, m)| {
        let edges = proptest::collection::vec((0..n as u64, 0..n as u64, 1u32..20), 1..m.max(2));
        edges.prop_map(move |edges| {
            let mut b = GraphBuilder::<(), f64>::new();
            for v in 0..n as u64 {
                b.ensure_vertex(v);
            }
            for (s, d, w) in edges {
                b.add_edge(s, d, w as f64 / 2.0);
            }
            b.build().expect("valid edges")
        })
    })
}

/// The cold reference: a one-shot engine run of the same query class over
/// the same partition, no resident state anywhere.
fn cold_sssp(graph: &WeightedGraph, assignment: &PartitionAssignment) -> HashMap<VertexId, f64> {
    GrapeEngine::new(SsspProgram)
        .run_on_graph(&SsspQuery::new(0), graph, assignment)
        .expect("cold sssp")
        .output
}

fn cold_cc(graph: &WeightedGraph, assignment: &PartitionAssignment) -> HashMap<VertexId, VertexId> {
    GrapeEngine::new(CcProgram)
        .run_on_graph(&CcQuery, graph, assignment)
        .expect("cold cc")
        .output
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One resident session serving several query classes in sequence and
    /// concurrently must agree with per-query cold runs, for every builtin
    /// strategy and 2–4 workers.
    #[test]
    fn resident_session_matches_cold_runs(
        graph in arb_graph(60, 160),
        k in 2usize..5,
        strategy_index in 0usize..6,
    ) {
        let strategy = BuiltinStrategy::all()[strategy_index % BuiltinStrategy::all().len()];
        let assignment = strategy.partition(&graph, k);

        let session = Session::connect(SessionConfig::in_process(k)).expect("connect");
        session
            .load(&SessionGraph::from(graph.clone()), strategy)
            .expect("load");

        // Two classes in flight at once over the same resident fragments.
        let sssp = session.submit(Query::sssp(0)).expect("submit sssp");
        let cc = session.submit(Query::cc()).expect("submit cc");
        let sssp = sssp.join().expect("sssp");
        let cc = cc.join().expect("cc");

        match sssp.result {
            QueryResult::Distances(map) => prop_assert_eq!(map, cold_sssp(&graph, &assignment)),
            other => prop_assert!(false, "sssp returned {:?}", other.class()),
        }
        match cc.result {
            QueryResult::Components(map) => prop_assert_eq!(map, cold_cc(&graph, &assignment)),
            other => prop_assert!(false, "cc returned {:?}", other.class()),
        }

        // Resubmitting on the same resident session leaves no residue: the
        // digest and stats of a rerun are identical.
        let first = session.submit(Query::sssp(0)).expect("submit").join().expect("first");
        let second = session.submit(Query::sssp(0)).expect("submit").join().expect("second");
        prop_assert_eq!(first.result.digest(), second.result.digest());
        prop_assert_eq!(first.stats.supersteps, second.stats.supersteps);
        prop_assert_eq!(first.stats.messages, second.stats.messages);
    }
}
