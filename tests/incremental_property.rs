//! Property test for cross-run incremental IncEval: after random mutation
//! batches (inserts, then deletes) on a resident session, resubmitted queries
//! must match a cold session that replays the same batches and answers from
//! scratch — across partition strategies, worker counts and all three
//! transports (in-process, TCP, Unix-domain sockets). SSSP and CC have unique
//! fixpoints, so their answers must be bit-identical; PageRank's quantized
//! grid admits a cluster of fixpoints, so warm answers must land within the
//! documented cluster radius of the cold one.

use grape::prelude::*;
use grape::{GrapeService, Query, ServiceOptions, Session, SessionConfig, SessionGraph};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Strategy: a random weighted edge list over `n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = WeightedGraph> {
    (2..max_n, 1..max_m).prop_flat_map(|(n, m)| {
        let edges = proptest::collection::vec((0..n as u64, 0..n as u64, 1u32..20), 1..m.max(2));
        edges.prop_map(move |edges| {
            let mut b = GraphBuilder::<(), f64>::new();
            for v in 0..n as u64 {
                b.ensure_vertex(v);
            }
            for (s, d, w) in edges {
                b.add_edge(s, d, w as f64 / 2.0);
            }
            b.build().expect("valid edges")
        })
    })
}

/// PageRank whose local sweeps always drain their frontier, so each run is
/// fully deterministic given its start point. Warm and cold starts may still
/// settle on different members of the quantized-fixpoint cluster; the test
/// checks the documented per-vertex radius instead of bit equality.
fn patient_pagerank() -> Query {
    Query::PageRank {
        damping: 0.85,
        max_local_iterations: 400,
        tolerance: 1e-6,
    }
}

/// The query parameters of [`patient_pagerank`], for the cluster radius.
fn patient_pagerank_query() -> PageRankQuery {
    PageRankQuery {
        damping: 0.85,
        max_local_iterations: 400,
        tolerance: 1e-6,
    }
}

/// Asserts a warm answer matches the cold reference: bit-identical result and
/// digest for the unique-fixpoint classes (SSSP, CC), same vertex set and
/// per-vertex gap within the fixpoint cluster radius for PageRank.
fn assert_matches_cold(
    query: &Query,
    warm: &QueryOutcome,
    cold: &QueryOutcome,
    num_edges: usize,
    context: &str,
) -> Result<(), TestCaseError> {
    if matches!(query, Query::PageRank { .. }) {
        let radius = patient_pagerank_query().fixpoint_cluster_radius(num_edges);
        let (QueryResult::Ranks(w), QueryResult::Ranks(c)) = (&warm.result, &cold.result) else {
            return Err(TestCaseError::fail(format!(
                "{context}: pagerank returned a non-rank result"
            )));
        };
        prop_assert_eq!(w.len(), c.len(), "{}: rank vertex sets differ", context);
        for (v, r) in c {
            let wv = w.get(v).copied();
            prop_assert!(
                wv.is_some(),
                "{}: vertex {} missing from warm ranks",
                context,
                v
            );
            let gap = (wv.unwrap() - r).abs();
            prop_assert!(
                gap <= radius,
                "{}: rank of vertex {} off by {:e} > cluster radius {:e}",
                context,
                v,
                gap,
                radius
            );
        }
    } else {
        prop_assert_eq!(&warm.result, &cold.result, "{}: answer diverged", context);
        prop_assert_eq!(warm.result.digest(), cold.result.digest());
    }
    Ok(())
}

/// The cold reference: a fresh in-process session that replays the same
/// update batches and then answers for the first time — identical
/// incrementally-updated fragments, empty converged cache.
fn replay_cold(
    graph: &WeightedGraph,
    batches: &[Vec<GraphMutation<(), f64>>],
    strategy: BuiltinStrategy,
    workers: usize,
    query: Query,
) -> QueryOutcome {
    let session = Session::connect(SessionConfig::in_process(workers)).expect("connect");
    session
        .load(&SessionGraph::from(graph.clone()), strategy)
        .expect("load");
    for batch in batches {
        session.update(batch.clone()).expect("replay update");
    }
    session
        .submit(query)
        .expect("submit")
        .join()
        .expect("cold query")
}

/// Monotonically increasing suffix so concurrent / repeated cases never
/// collide on a Unix socket path.
static CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Insert batch → resubmit (sssp/cc/pagerank all warm-eligible), then
    /// delete batch → resubmit (sssp/cc fall back cold, pagerank stays
    /// warm): every answer equals the replayed cold run bit for bit.
    #[test]
    fn incremental_resubmissions_match_cold_replays(
        graph in arb_graph(40, 100),
        inserts in proptest::collection::vec((0u64..1000, 0u64..1000, 1u32..20), 1..8),
        new_vertices in 0usize..3,
        delete_picks in proptest::collection::vec(0usize..10_000, 1..6),
        k in 2usize..5,
        strategy_index in 0usize..8,
        transport in 0usize..3,
    ) {
        let n = graph.num_vertices() as u64;
        let strategy = BuiltinStrategy::all()[strategy_index % BuiltinStrategy::all().len()];

        // Insert-only batch: random edges between residents, plus up to two
        // brand-new vertices wired into the graph.
        let mut insert_batch: Vec<GraphMutation<(), f64>> = inserts
            .iter()
            .map(|&(s, d, w)| GraphMutation::AddEdge {
                src: s % n,
                dst: d % n,
                data: w as f64 / 4.0,
            })
            .collect();
        for i in 0..new_vertices {
            let id = 1_000 + i as u64;
            insert_batch.push(GraphMutation::AddVertex { id, data: () });
            insert_batch.push(GraphMutation::AddEdge {
                src: i as u64 % n,
                dst: id,
                data: 1.5,
            });
        }

        // Delete batch: distinct live (src, dst) pairs of the inserted graph
        // (RemoveEdge drops all parallel copies of a pair at once).
        let mut delta = DeltaGraph::new(graph.clone());
        delta.apply(&insert_batch).expect("insert batch applies");
        let mid = delta.snapshot(graph.has_reverse());
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        let mut seen = HashSet::new();
        for (s, d, _) in mid.edges() {
            if seen.insert((s, d)) {
                pairs.push((s, d));
            }
        }
        let mut chosen = HashSet::new();
        let delete_batch: Vec<GraphMutation<(), f64>> = delete_picks
            .iter()
            .filter_map(|&p| {
                let (s, d) = pairs[p % pairs.len()];
                chosen.insert((s, d)).then_some(GraphMutation::RemoveEdge { src: s, dst: d })
            })
            .collect();

        // The session under test, on one of the three transports.
        let mut tcp_daemon = None;
        #[cfg(unix)]
        let mut uds = None;
        let config = match transport {
            1 => {
                let daemon = GrapeService::bind("127.0.0.1:0", ServiceOptions::default())
                    .expect("bind")
                    .spawn()
                    .expect("spawn");
                let config = SessionConfig::remote(k, vec![daemon.endpoint().clone()]);
                tcp_daemon = Some(daemon);
                config
            }
            #[cfg(unix)]
            2 => {
                let path = std::env::temp_dir().join(format!(
                    "grape-incprop-{}-{}.sock",
                    std::process::id(),
                    CASE.fetch_add(1, Ordering::Relaxed)
                ));
                let daemon = GrapeService::bind_uds(&path, ServiceOptions::default())
                    .expect("bind uds")
                    .spawn()
                    .expect("spawn");
                let config = SessionConfig::remote(k, vec![daemon.endpoint().clone()]);
                uds = Some(daemon);
                config
            }
            _ => SessionConfig::in_process(k),
        };
        let session = Session::connect(config).expect("connect");
        session
            .load(&SessionGraph::from(graph.clone()), strategy)
            .expect("load");

        let queries = [Query::sssp(0), Query::cc(), patient_pagerank()];
        for query in &queries {
            session.submit(query.clone()).expect("submit").join().expect("prime run");
        }

        session.update(insert_batch.clone()).expect("insert update");
        let after_inserts = [insert_batch.clone()];
        let mid_edges = mid.edges().count();
        for query in &queries {
            let warm = session.submit(query.clone()).expect("submit").join().expect("warm run");
            let cold = replay_cold(&graph, &after_inserts, strategy, k, query.clone());
            let context = format!(
                "{:?}/{}/k={}/t={} post-insert",
                query.class(),
                strategy.name(),
                k,
                transport
            );
            assert_matches_cold(query, &warm, &cold, mid_edges, &context)?;
        }

        if !delete_batch.is_empty() {
            session.update(delete_batch.clone()).expect("delete update");
            delta.apply(&delete_batch).expect("delete batch applies");
            let final_edges = delta.snapshot(graph.has_reverse()).edges().count();
            let after_deletes = [insert_batch.clone(), delete_batch.clone()];
            for query in &queries {
                let warm = session.submit(query.clone()).expect("submit").join().expect("warm run");
                let cold = replay_cold(&graph, &after_deletes, strategy, k, query.clone());
                let context = format!(
                    "{:?}/{}/k={}/t={} post-delete",
                    query.class(),
                    strategy.name(),
                    k,
                    transport
                );
                assert_matches_cold(query, &warm, &cold, final_edges, &context)?;
            }
        }

        if let Some(daemon) = tcp_daemon {
            daemon.shutdown().expect("shutdown");
        }
        #[cfg(unix)]
        if let Some(daemon) = uds {
            daemon.shutdown().expect("shutdown");
        }
    }
}
