//! Property-based tests on the core invariants of GRAPE-RS, using proptest.
//!
//! * partitioners always produce total, in-range assignments;
//! * fragment construction preserves the vertex set and the cut-edge
//!   bookkeeping;
//! * the PIE engine's answers are independent of the partition strategy and
//!   the number of workers (the Assurance Theorem's observable consequence);
//! * the bounded incremental SSSP always agrees with recomputation from
//!   scratch.

use grape::algo::pagerank::sequential_pagerank;
use grape::algo::sssp::{incremental_sssp, sequential_sssp};
use grape::algo::{
    cc::sequential_cc, keyword::sequential_keyword, sim::sequential_sim, subiso::sequential_subiso,
    CcProgram, CcQuery, CfProgram, CfQuery, KeywordProgram, KeywordQuery, PageRankProgram,
    PageRankQuery, SimProgram, SimQuery, SsspProgram, SsspQuery, SubIsoProgram, SubIsoQuery,
};
use grape::core::ThreadCount;
use grape::graph::labels::{LabeledVertex, PatternGraph};
use grape::graph::types::EdgeRecord;
use grape::graph::LabeledGraph;
use grape::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

/// Strategy: a random edge list over `n` vertices (ensuring every vertex id
/// in 0..n exists), with weights in [0.5, 10].
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = WeightedGraph> {
    (2..max_n, 1..max_m).prop_flat_map(|(n, m)| {
        let edges = proptest::collection::vec((0..n as u64, 0..n as u64, 1u32..20), 1..m.max(2));
        edges.prop_map(move |edges| {
            let mut b = GraphBuilder::<(), f64>::new();
            for v in 0..n as u64 {
                b.ensure_vertex(v);
            }
            for (s, d, w) in edges {
                b.add_edge(s, d, w as f64 / 2.0);
            }
            b.build().expect("valid edges")
        })
    })
}

/// Strategy: a random labeled graph over `n` vertices. Labels and keywords
/// are deterministic functions of the id (person/product mix, `phone` /
/// `laptop` keyword holders); proptest varies the edge structure and
/// relation types.
fn arb_labeled_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = LabeledGraph> {
    (4..max_n, 1..max_m).prop_flat_map(|(n, m)| {
        let edges = proptest::collection::vec((0..n as u64, 0..n as u64, 0..3usize), 1..m.max(2));
        edges.prop_map(move |edges| {
            let relations = ["follows", "recommends", "rates_bad"];
            let vertices: Vec<(VertexId, LabeledVertex)> = (0..n as u64)
                .map(|i| {
                    let label = if i % 4 == 0 { "product" } else { "person" };
                    let mut keywords: Vec<String> = Vec::new();
                    if i % 3 == 0 {
                        keywords.push("phone".into());
                    }
                    if i % 5 == 0 {
                        keywords.push("laptop".into());
                    }
                    (i, LabeledVertex::with_keywords(label, keywords))
                })
                .collect();
            let records: Vec<EdgeRecord<String>> = edges
                .into_iter()
                .map(|(s, d, r)| EdgeRecord::new(s, d, relations[r].to_string()))
                .collect();
            LabeledGraph::from_records(vertices, records, true).expect("valid records")
        })
    })
}

/// The chain pattern shared by the sim/subiso parity suites:
/// person --follows--> person --recommends--> product.
fn chain_pattern() -> PatternGraph {
    PatternGraph::new(vec!["person".into(), "person".into(), "product".into()])
        .edge_labeled(0, 1, "follows")
        .edge_labeled(1, 2, "recommends")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partitioners_cover_every_vertex_within_range(
        graph in arb_graph(120, 500),
        k in 1usize..9,
    ) {
        for strategy in BuiltinStrategy::all() {
            let assignment = strategy.partition(&graph, k);
            prop_assert_eq!(assignment.num_assigned(), graph.num_vertices());
            for (_, f) in assignment.iter() {
                prop_assert!(f < k);
            }
            let sizes = assignment.sizes();
            prop_assert_eq!(sizes.iter().sum::<usize>(), graph.num_vertices());
        }
    }

    #[test]
    fn fragments_partition_vertices_and_duplicate_only_cut_edges(
        graph in arb_graph(100, 400),
        k in 1usize..7,
    ) {
        let assignment = BuiltinStrategy::Hash.partition(&graph, k);
        let quality = grape::partition::evaluate_partition(&graph, &assignment);
        let fragments = build_fragments(&graph, &assignment);
        let total_inner: usize = fragments.iter().map(|f| f.num_inner()).sum();
        prop_assert_eq!(total_inner, graph.num_vertices());
        let total_edges: usize = fragments.iter().map(|f| f.num_local_edges()).sum();
        prop_assert_eq!(total_edges, graph.num_edges() + quality.cut_edges);
        // Border bookkeeping is symmetric: v is outer somewhere iff its owner
        // lists that fragment as a mirror location.
        for fragment in &fragments {
            for &v in fragment.outer_vertices() {
                let owner = fragment.owner_of(v).expect("outer vertices have owners");
                prop_assert!(fragments[owner].mirrors_of(v).contains(&fragment.id));
            }
        }
    }

    #[test]
    fn sssp_answers_are_partition_invariant(
        graph in arb_graph(80, 300),
        k in 1usize..6,
    ) {
        let expected = sequential_sssp(&graph, 0);
        let assignment = BuiltinStrategy::Ldg.partition(&graph, k);
        let result = GrapeEngine::new(SsspProgram)
            .run_on_graph(&SsspQuery::new(0), &graph, &assignment)
            .unwrap();
        for (v, d) in &expected {
            let got = result.output.get(v).copied().unwrap_or(f64::INFINITY);
            prop_assert!((got - d).abs() < 1e-9, "vertex {} {} vs {}", v, got, d);
        }
        for (v, d) in &result.output {
            if d.is_finite() {
                prop_assert!(expected.contains_key(v));
            }
        }
    }

    #[test]
    fn cc_answers_are_partition_invariant(
        graph in arb_graph(80, 250),
        k in 1usize..6,
    ) {
        let expected = sequential_cc(&graph);
        let assignment = BuiltinStrategy::MetisLike.partition(&graph, k);
        let result = GrapeEngine::new(CcProgram)
            .run_on_graph(&CcQuery, &graph, &assignment)
            .unwrap();
        for v in graph.vertices() {
            prop_assert_eq!(result.output[&v], expected[&v]);
        }
    }

    #[test]
    fn incremental_sssp_equals_recomputation(
        graph in arb_graph(60, 200),
        new_source in 0u64..60,
    ) {
        // Start from the distances of source 0, then additionally seed
        // `new_source` at distance 0; the result must equal a two-source
        // recomputation.
        let mut dist = sequential_sssp(&graph, 0);
        if !graph.contains(new_source) {
            return Ok(());
        }
        incremental_sssp(&graph, &mut dist, &[(new_source, 0.0)]);
        // Reference: min over both single-source runs.
        let a = sequential_sssp(&graph, 0);
        let b = sequential_sssp(&graph, new_source);
        let mut expected: HashMap<VertexId, f64> = a;
        for (v, d) in b {
            expected
                .entry(v)
                .and_modify(|e| *e = e.min(d))
                .or_insert(d);
        }
        for (v, d) in &expected {
            prop_assert!((dist[v] - d).abs() < 1e-9);
        }
    }

    #[test]
    fn dense_sssp_and_cc_are_identical_to_sequential_references(
        graph in arb_graph(70, 250),
        k in 1usize..7,
    ) {
        // The generated weights are multiples of 0.5, so every path length is
        // an exact dyadic rational in f64 and the dense engine paths must be
        // *bit-identical* to the sequential references, for every partition
        // strategy and worker count.
        let sssp_ref = sequential_sssp(&graph, 0);
        let cc_ref = sequential_cc(&graph);
        for strategy in BuiltinStrategy::all() {
            let assignment = strategy.partition(&graph, k);
            let sssp = GrapeEngine::new(SsspProgram)
                .run_on_graph(&SsspQuery::new(0), &graph, &assignment)
                .unwrap();
            for v in graph.vertices() {
                let got = sssp.output.get(&v).copied().unwrap_or(f64::INFINITY);
                let want = sssp_ref.get(&v).copied().unwrap_or(f64::INFINITY);
                prop_assert!(
                    got == want || (got.is_infinite() && want.is_infinite()),
                    "sssp/{} k={} vertex {}: {} vs {}",
                    strategy.name(), k, v, got, want
                );
            }
            let cc = GrapeEngine::new(CcProgram)
                .run_on_graph(&CcQuery, &graph, &assignment)
                .unwrap();
            for v in graph.vertices() {
                prop_assert_eq!(
                    cc.output[&v], cc_ref[&v],
                    "cc/{} k={} vertex {}", strategy.name(), k, v
                );
            }
        }
    }

    #[test]
    fn dense_pagerank_tracks_sequential_reference(
        graph in arb_graph(60, 200),
        k in 1usize..5,
    ) {
        // PageRank is iterative over floats, so the distributed fixpoint is
        // only tolerance-close to the sequential reference (and to itself
        // across partitionings) rather than bit-identical.
        let query = PageRankQuery {
            max_local_iterations: 80,
            tolerance: 1e-9,
            ..Default::default()
        };
        let reference = sequential_pagerank(&graph, &query, 80);
        let program = PageRankProgram::new(graph.num_vertices());
        for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::MetisLike] {
            let assignment = strategy.partition(&graph, k);
            let result = GrapeEngine::new(program)
                .run_on_graph(&query, &graph, &assignment)
                .unwrap();
            for v in graph.vertices() {
                let got = result.output.get(&v).copied().unwrap_or(0.0);
                prop_assert!(
                    (got - reference[&v]).abs() < 5e-3,
                    "pagerank/{} k={} vertex {}: {} vs {}",
                    strategy.name(), k, v, got, reference[&v]
                );
            }
        }
    }

    #[test]
    fn framed_transport_is_bit_identical_across_strategies_and_worker_counts(
        graph in arb_graph(70, 220),
        k in 1usize..6,
    ) {
        // The framed backend round-trips every message through the wire
        // codec; the Assurance Theorem's observable consequence must be
        // byte-for-byte unaffected: same answers (bit-identical floats),
        // same superstep count, same message count. Inline execution makes
        // the schedule deterministic so the comparison is exact for every
        // program, including the float-iterating PageRank.
        let pr_query = PageRankQuery { max_local_iterations: 40, ..Default::default() };
        let pr_n = graph.num_vertices();
        let cf_query = CfQuery { rank: 3, epochs: 3, ..Default::default() };
        for strategy in BuiltinStrategy::all() {
            let assignment = strategy.partition(&graph, k);
            let run = |transport: TransportKind| {
                let config = EngineConfig::builder()
                    .execution(ExecutionMode::Inline)
                    .transport(transport)
                    .build();
                let sssp = GrapeEngine::new(SsspProgram)
                    .with_config(config.clone())
                    .run_on_graph(&SsspQuery::new(0), &graph, &assignment)
                    .unwrap();
                let cc = GrapeEngine::new(CcProgram)
                    .with_config(config.clone())
                    .run_on_graph(&CcQuery, &graph, &assignment)
                    .unwrap();
                let pr = GrapeEngine::new(PageRankProgram::new(pr_n))
                    .with_config(config.clone())
                    .run_on_graph(&pr_query, &graph, &assignment)
                    .unwrap();
                let cf = GrapeEngine::new(CfProgram::new(pr_n / 2))
                    .with_config(config.clone())
                    .run_on_graph(&cf_query, &graph, &assignment)
                    .unwrap();
                (sssp, cc, pr, cf)
            };
            let (sssp_t, cc_t, pr_t, cf_t) = run(TransportKind::InProcess);
            let (sssp_f, cc_f, pr_f, cf_f) = run(TransportKind::Framed);
            // CF's factor vectors must survive the codec round-trip bit for
            // bit (Vec<f64> values over the wire).
            prop_assert_eq!(cf_t.output.factors.len(), cf_f.output.factors.len());
            for (v, fac) in &cf_t.output.factors {
                prop_assert_eq!(
                    fac, &cf_f.output.factors[v],
                    "cf/{} k={} vertex {}", strategy.name(), k, v
                );
            }
            for v in graph.vertices() {
                let (a, b) = (sssp_t.output.get(&v), sssp_f.output.get(&v));
                prop_assert!(
                    a.map(|d| d.to_bits()) == b.map(|d| d.to_bits()),
                    "sssp/{} k={} vertex {}: {:?} vs {:?}", strategy.name(), k, v, a, b
                );
                prop_assert_eq!(cc_t.output.get(&v), cc_f.output.get(&v));
                let (a, b) = (pr_t.output.get(&v), pr_f.output.get(&v));
                prop_assert!(
                    a.map(|d| d.to_bits()) == b.map(|d| d.to_bits()),
                    "pagerank/{} k={} vertex {}: {:?} vs {:?}", strategy.name(), k, v, a, b
                );
            }
            for (typed, framed, algo) in [
                (&sssp_t.stats, &sssp_f.stats, "sssp"),
                (&cc_t.stats, &cc_f.stats, "cc"),
                (&pr_t.stats, &pr_f.stats, "pagerank"),
                (&cf_t.stats, &cf_f.stats, "cf"),
            ] {
                prop_assert_eq!(
                    typed.supersteps, framed.supersteps,
                    "{}/{} k={}: superstep counts differ", algo, strategy.name(), k
                );
                prop_assert_eq!(
                    typed.messages, framed.messages,
                    "{}/{} k={}: message counts differ", algo, strategy.name(), k
                );
                // Framed accounting counts actual bytes: estimates plus one
                // header per message (and the eval field per report), so it
                // can only exceed the estimated path when anything moved.
                if typed.messages > 0 {
                    prop_assert!(
                        framed.bytes > typed.bytes,
                        "{}/{} k={}: framed {} bytes vs estimated {}",
                        algo, strategy.name(), k, framed.bytes, typed.bytes
                    );
                }
            }
        }
    }

    #[test]
    fn numeric_answers_are_bit_identical_across_thread_counts(
        graph in arb_graph(70, 220),
        k in 1usize..5,
    ) {
        // The determinism contract of the parallel-primitive layer: the
        // intra-worker thread count changes only which OS thread executes a
        // chunk, never the chunk decomposition or the reduction order, so
        // every answer — including the float-iterating PageRank and CF —
        // must be *bit-identical* across thread counts, along with the
        // superstep and message counts. Checked per partition strategy, and
        // once through the framed wire codec.
        let pr_query = PageRankQuery {
            max_local_iterations: 40,
            tolerance: 1e-9,
            ..Default::default()
        };
        let n = graph.num_vertices();
        let cf_query = CfQuery { rank: 3, epochs: 3, ..Default::default() };
        for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::MetisLike] {
            let assignment = strategy.partition(&graph, k);
            let run = |threads: u32, transport: TransportKind| {
                let config = EngineConfig::builder()
                    .execution(ExecutionMode::Inline)
                    .transport(transport)
                    .threads_per_worker(ThreadCount::Fixed(threads))
                    .build();
                let sssp = GrapeEngine::new(SsspProgram)
                    .with_config(config.clone())
                    .run_on_graph(&SsspQuery::new(0), &graph, &assignment)
                    .unwrap();
                let cc = GrapeEngine::new(CcProgram)
                    .with_config(config.clone())
                    .run_on_graph(&CcQuery, &graph, &assignment)
                    .unwrap();
                let pr = GrapeEngine::new(PageRankProgram::new(n))
                    .with_config(config.clone())
                    .run_on_graph(&pr_query, &graph, &assignment)
                    .unwrap();
                let cf = GrapeEngine::new(CfProgram::new(n / 2))
                    .with_config(config.clone())
                    .run_on_graph(&cf_query, &graph, &assignment)
                    .unwrap();
                (sssp, cc, pr, cf)
            };
            let base = run(1, TransportKind::InProcess);
            let variants = [
                (2u32, TransportKind::InProcess),
                (4, TransportKind::InProcess),
                (8, TransportKind::InProcess),
                (4, TransportKind::Framed),
            ];
            for (threads, transport) in variants {
                let got = run(threads, transport);
                for v in graph.vertices() {
                    prop_assert!(
                        base.0.output.get(&v).map(|d| d.to_bits())
                            == got.0.output.get(&v).map(|d| d.to_bits()),
                        "sssp/{} k={} t={} vertex {}", strategy.name(), k, threads, v
                    );
                    prop_assert_eq!(
                        base.1.output.get(&v), got.1.output.get(&v),
                        "cc/{} k={} t={} vertex {}", strategy.name(), k, threads, v
                    );
                    prop_assert!(
                        base.2.output.get(&v).map(|d| d.to_bits())
                            == got.2.output.get(&v).map(|d| d.to_bits()),
                        "pagerank/{} k={} t={} vertex {}", strategy.name(), k, threads, v
                    );
                }
                prop_assert_eq!(base.3.output.factors.len(), got.3.output.factors.len());
                for (v, fac) in &base.3.output.factors {
                    prop_assert_eq!(
                        fac, &got.3.output.factors[v],
                        "cf/{} k={} t={} vertex {}", strategy.name(), k, threads, v
                    );
                }
                for (a, b, algo) in [
                    (&base.0.stats, &got.0.stats, "sssp"),
                    (&base.1.stats, &got.1.stats, "cc"),
                    (&base.2.stats, &got.2.stats, "pagerank"),
                    (&base.3.stats, &got.3.stats, "cf"),
                ] {
                    prop_assert_eq!(
                        a.supersteps, b.supersteps,
                        "{}/{} k={} t={}: superstep counts differ",
                        algo, strategy.name(), k, threads
                    );
                    prop_assert_eq!(
                        a.messages, b.messages,
                        "{}/{} k={} t={}: message counts differ",
                        algo, strategy.name(), k, threads
                    );
                }
            }
        }
    }

    #[test]
    fn message_totals_match_superstep_history(
        graph in arb_graph(70, 250),
        k in 2usize..6,
    ) {
        let assignment = BuiltinStrategy::Hash.partition(&graph, k);
        let result = GrapeEngine::new(CcProgram)
            .run_on_graph(&CcQuery, &graph, &assignment)
            .unwrap();
        let by_history: u64 = result.stats.history.iter().map(|t| t.messages).sum();
        prop_assert_eq!(by_history, result.stats.messages);
        prop_assert_eq!(result.stats.history.len(), result.stats.supersteps);
    }
}

// The pattern/keyword parity suites enumerate embeddings and run three
// programs per strategy, so they get a smaller case budget than the numeric
// suites above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sim_subiso_keyword_are_identical_to_sequential_across_strategies(
        graph in arb_labeled_graph(36, 150),
        k in 1usize..6,
    ) {
        // The three pattern/keyword programs are exact algorithms: for every
        // partition strategy and worker count the distributed answers must be
        // *identical* to the sequential references — including a finite
        // keyword distance bound, which Assemble must re-apply.
        let pattern = chain_pattern();
        let sim_ref = sequential_sim(&graph, &pattern);
        let subiso_ref = {
            let mut m = sequential_subiso(&graph, &pattern);
            m.sort();
            m
        };
        let kq = KeywordQuery::new(["phone", "laptop"], 6.0);
        let kw_ref = sequential_keyword(&graph, &kq);
        for strategy in BuiltinStrategy::all() {
            let assignment = strategy.partition(&graph, k);
            let sim = GrapeEngine::new(SimProgram)
                .run_on_graph(&SimQuery::new(pattern.clone()), &graph, &assignment)
                .unwrap();
            prop_assert_eq!(
                &sim.output, &sim_ref,
                "sim/{} k={}", strategy.name(), k
            );
            let mut sub = GrapeEngine::new(SubIsoProgram)
                .run_on_graph(&SubIsoQuery::new(pattern.clone()), &graph, &assignment)
                .unwrap()
                .output;
            sub.sort();
            prop_assert_eq!(
                &sub, &subiso_ref,
                "subiso/{} k={}", strategy.name(), k
            );
            let kw = GrapeEngine::new(KeywordProgram)
                .run_on_graph(&kq, &graph, &assignment)
                .unwrap();
            prop_assert_eq!(
                kw.output.len(), kw_ref.len(),
                "keyword/{} k={}", strategy.name(), k
            );
            for (got, want) in kw.output.iter().zip(kw_ref.iter()) {
                prop_assert_eq!(got.root, want.root, "keyword/{} k={}", strategy.name(), k);
                prop_assert_eq!(
                    &got.distances, &want.distances,
                    "keyword/{} k={} root {}", strategy.name(), k, got.root
                );
            }
        }
    }

    #[test]
    fn pattern_answers_are_identical_across_thread_counts(
        graph in arb_labeled_graph(32, 120),
        k in 1usize..5,
    ) {
        // Thread-count half of the determinism contract for the four
        // label-driven classes. `sim` exercises the parallel refinement
        // worklist; subiso, keyword and marketing pin that programs which do
        // not (yet) use the pool are untouched by the knob. One variant runs
        // through the framed wire codec.
        let pattern = chain_pattern();
        let kq = KeywordQuery::new(["phone", "laptop"], 6.0);
        let mq = MarketingQuery::new(0);
        for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::MetisLike] {
            let assignment = strategy.partition(&graph, k);
            let run = |threads: u32, transport: TransportKind| {
                let config = EngineConfig::builder()
                    .execution(ExecutionMode::Inline)
                    .transport(transport)
                    .threads_per_worker(ThreadCount::Fixed(threads))
                    .build();
                let sim = GrapeEngine::new(SimProgram)
                    .with_config(config.clone())
                    .run_on_graph(&SimQuery::new(pattern.clone()), &graph, &assignment)
                    .unwrap();
                let sub = GrapeEngine::new(SubIsoProgram)
                    .with_config(config.clone())
                    .run_on_graph(&SubIsoQuery::new(pattern.clone()), &graph, &assignment)
                    .unwrap();
                let kw = GrapeEngine::new(KeywordProgram)
                    .with_config(config.clone())
                    .run_on_graph(&kq, &graph, &assignment)
                    .unwrap();
                let mk = GrapeEngine::new(MarketingProgram)
                    .with_config(config.clone())
                    .run_on_graph(&mq, &graph, &assignment)
                    .unwrap();
                (sim, sub, kw, mk)
            };
            let base = run(1, TransportKind::InProcess);
            let variants = [
                (2u32, TransportKind::InProcess),
                (8, TransportKind::InProcess),
                (4, TransportKind::Framed),
            ];
            for (threads, transport) in variants {
                let got = run(threads, transport);
                prop_assert_eq!(
                    &base.0.output, &got.0.output,
                    "sim/{} k={} t={}", strategy.name(), k, threads
                );
                prop_assert_eq!(
                    &base.1.output, &got.1.output,
                    "subiso/{} k={} t={}", strategy.name(), k, threads
                );
                prop_assert_eq!(base.2.output.len(), got.2.output.len());
                for (a, b) in base.2.output.iter().zip(got.2.output.iter()) {
                    prop_assert_eq!(a.root, b.root);
                    prop_assert_eq!(&a.distances, &b.distances);
                }
                prop_assert_eq!(
                    &base.3.output, &got.3.output,
                    "marketing/{} k={} t={}", strategy.name(), k, threads
                );
                for (a, b, algo) in [
                    (&base.0.stats, &got.0.stats, "sim"),
                    (&base.1.stats, &got.1.stats, "subiso"),
                    (&base.2.stats, &got.2.stats, "keyword"),
                    (&base.3.stats, &got.3.stats, "marketing"),
                ] {
                    prop_assert_eq!(
                        a.supersteps, b.supersteps,
                        "{}/{} k={} t={}: superstep counts differ",
                        algo, strategy.name(), k, threads
                    );
                    prop_assert_eq!(
                        a.messages, b.messages,
                        "{}/{} k={} t={}: message counts differ",
                        algo, strategy.name(), k, threads
                    );
                }
            }
        }
    }

    #[test]
    fn framed_transport_is_bit_identical_for_pattern_programs(
        graph in arb_labeled_graph(32, 120),
        k in 1usize..5,
    ) {
        // Same invariant as the numeric framed parity suite, for the value
        // types the pattern programs put on the wire: u64 masks (sim),
        // String-carrying neighbourhood deltas (subiso) and Vec<f64>
        // distance vectors (keyword).
        let pattern = chain_pattern();
        let kq = KeywordQuery::new(["phone", "laptop"], f64::INFINITY);
        for strategy in [BuiltinStrategy::Hash, BuiltinStrategy::MetisLike] {
            let assignment = strategy.partition(&graph, k);
            let run = |transport: TransportKind| {
                let config = EngineConfig::builder()
                    .execution(ExecutionMode::Inline)
                    .transport(transport)
                    .build();
                let sim = GrapeEngine::new(SimProgram)
                    .with_config(config.clone())
                    .run_on_graph(&SimQuery::new(pattern.clone()), &graph, &assignment)
                    .unwrap();
                let sub = GrapeEngine::new(SubIsoProgram)
                    .with_config(config.clone())
                    .run_on_graph(&SubIsoQuery::new(pattern.clone()), &graph, &assignment)
                    .unwrap();
                let kw = GrapeEngine::new(KeywordProgram)
                    .with_config(config.clone())
                    .run_on_graph(&kq, &graph, &assignment)
                    .unwrap();
                (sim, sub, kw)
            };
            let (sim_t, sub_t, kw_t) = run(TransportKind::InProcess);
            let (sim_f, sub_f, kw_f) = run(TransportKind::Framed);
            prop_assert_eq!(&sim_t.output, &sim_f.output);
            prop_assert_eq!(&sub_t.output, &sub_f.output);
            prop_assert_eq!(kw_t.output.len(), kw_f.output.len());
            for (a, b) in kw_t.output.iter().zip(kw_f.output.iter()) {
                prop_assert_eq!(a.root, b.root);
                prop_assert_eq!(&a.distances, &b.distances);
            }
            for (typed, framed, algo) in [
                (&sim_t.stats, &sim_f.stats, "sim"),
                (&sub_t.stats, &sub_f.stats, "subiso"),
                (&kw_t.stats, &kw_f.stats, "keyword"),
            ] {
                prop_assert_eq!(
                    typed.supersteps, framed.supersteps,
                    "{}/{} k={}: superstep counts differ", algo, strategy.name(), k
                );
                prop_assert_eq!(
                    typed.messages, framed.messages,
                    "{}/{} k={}: message counts differ", algo, strategy.name(), k
                );
            }
        }
    }
}

/// Round-trips every fragment's PEval partial through the checkpoint codec
/// ([`snapshot_partial`](grape::core::PieProgram::snapshot_partial) /
/// `restore_partial`) and asserts the re-snapshot of the restored partial is
/// byte-identical — the bit-exactness recovery relies on — and that
/// truncated snapshots are rejected instead of misread.
fn audit_snapshot_roundtrip<P: grape::core::PieProgram>(
    program: &P,
    query: &P::Query,
    fragments: &[Fragment<P::VertexData, P::EdgeData>],
) {
    use grape::core::PieContext;
    for fragment in fragments {
        let mut ctx = PieContext::new();
        let slots: Vec<u32> = (0..fragment.border_vertices().len() as u32).collect();
        ctx.configure_borders(fragment.border_vertices(), &slots);
        let partial = program.peval(query, fragment, &mut ctx);
        let bytes = program
            .snapshot_partial(&partial)
            .expect("every query class snapshots its partial");
        let restored = program.restore_partial(&bytes).expect("snapshot restores");
        let again = program
            .snapshot_partial(&restored)
            .expect("restored partial re-snapshots");
        assert_eq!(
            bytes,
            again,
            "{}: restored partial re-snapshots differently",
            program.name()
        );
        if !bytes.is_empty() {
            assert!(
                program.restore_partial(&bytes[..bytes.len() - 1]).is_none(),
                "{}: truncated snapshot must be rejected",
                program.name()
            );
        }
    }
}

// Snapshot audit: recovery restores lost workers from these bytes, so every
// query class's partial must survive the checkpoint codec bit-exactly on
// arbitrary graphs, not just the unit-test fixtures.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pattern_partial_snapshots_roundtrip_bit_identically(
        graph in arb_labeled_graph(32, 120),
        k in 2usize..5,
    ) {
        let pattern = chain_pattern();
        let assignment = BuiltinStrategy::Hash.partition(&graph, k);
        let fragments = build_fragments(&graph, &assignment);
        audit_snapshot_roundtrip(&SimProgram, &SimQuery::new(pattern.clone()), &fragments);
        audit_snapshot_roundtrip(&SubIsoProgram, &SubIsoQuery::new(pattern.clone()), &fragments);
        audit_snapshot_roundtrip(
            &KeywordProgram,
            &KeywordQuery::new(["phone", "laptop"], 6.0),
            &fragments,
        );
        audit_snapshot_roundtrip(&MarketingProgram, &MarketingQuery::new(0), &fragments);
    }

    #[test]
    fn numeric_partial_snapshots_roundtrip_bit_identically(
        graph in arb_graph(32, 120),
        k in 2usize..5,
    ) {
        let assignment = BuiltinStrategy::Hash.partition(&graph, k);
        let fragments = build_fragments(&graph, &assignment);
        let n = graph.num_vertices();
        audit_snapshot_roundtrip(&SsspProgram, &SsspQuery::new(0), &fragments);
        audit_snapshot_roundtrip(&CcProgram, &CcQuery, &fragments);
        audit_snapshot_roundtrip(
            &PageRankProgram { global_vertices: n },
            &PageRankQuery::default(),
            &fragments,
        );
        audit_snapshot_roundtrip(
            &CfProgram::new(n / 2),
            &CfQuery { rank: 3, epochs: 3, ..Default::default() },
            &fragments,
        );
    }
}
